"""Inspector-executor runtime for irregular applications (Section 4).

Irregular codes access arrays through index arrays whose contents exist
only at run time, so the compiler cannot build MAI/CAI statically.  Instead
it plants an *inspector* after the first trip of the outer timing loop:

1. trip 1 executes under the default schedule while recording, per
   iteration set, the observed LLC hits (and their home banks) and misses
   (and their MCs);
2. the observations become exact MAI / CAI / alpha values;
3. the mapper produces the optimized schedule;
4. remaining trips (the *executor*) run it.

All inspector bookkeeping is charged to execution time: a per-recorded-
access cost plus the mapping computation, matching the paper's fully
accounted 0.7-19.5% overheads (Figures 7c / 8c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.snuca import LLCOrganization
from repro.sim.engine import ExecutionEngine, ObservedSet, TripPlan

from .affinity import affinity_from_counts
from .alpha import determine_alpha
from .mapping import FAULT_CANDIDATE_MARGIN_OBSERVED, Mapper, SetAffinity

INSPECT_LABEL = "inspector"
EXECUTE_LABEL = "executor"


@dataclass
class InspectorCost:
    """Model of the inspector's runtime overhead.

    ``cycles_per_access``: table update per recorded L1-miss access.
    ``cycles_per_set``: affinity-vector construction and mapping per set.
    ``fixed_cycles``: schedule installation and bookkeeping.
    The total is divided across cores (the inspector is parallel) and
    charged at the end of the inspection trip.
    """

    cycles_per_access: float = 0.8
    cycles_per_set: float = 80.0
    fixed_cycles: int = 4000

    def total_cycles(
        self, recorded_accesses: int, num_sets: int, num_cores: int
    ) -> int:
        work = (
            recorded_accesses * self.cycles_per_access
            + num_sets * self.cycles_per_set
        )
        return int(work / max(1, num_cores)) + self.fixed_cycles


@dataclass
class InspectorReport:
    """What the inspector measured and decided."""

    affinities: Dict[Tuple[int, int], SetAffinity] = field(default_factory=dict)
    schedules: Dict[int, Dict[int, int]] = field(default_factory=dict)
    moved_fractions: Dict[int, float] = field(default_factory=dict)
    overhead_cycles: int = 0

    @property
    def avg_moved_fraction(self) -> float:
        if not self.moved_fractions:
            return 0.0
        return sum(self.moved_fractions.values()) / len(self.moved_fractions)


class InspectorExecutor:
    """Runs an irregular program: one observed trip, then optimized trips."""

    def __init__(
        self,
        engine: ExecutionEngine,
        mapper: Mapper,
        region_of_node,
        cost: Optional[InspectorCost] = None,
        oblivious_mapper: Optional[Mapper] = None,
    ):
        self.engine = engine
        self.mapper = mapper
        self.region_of_node = region_of_node
        self.cost = cost or InspectorCost()
        # Fault-aware runs pass the pristine-table mapper alongside the
        # degraded one; _derive races both on the observed affinities and
        # keeps the schedule that prices cheaper on the degraded topology
        # (oblivious on ties), mirroring the compiler's candidate pass.
        self.oblivious_mapper = oblivious_mapper

    # ------------------------------------------------------------------
    def run(
        self,
        default_schedules: Dict[int, Dict[int, int]],
        trips: int,
        observe_executor: bool = False,
    ):
        """Execute ``trips`` timing-loop trips; returns (stats, report).

        Trip 1 = inspector (default schedule, observed).  Trips 2..N =
        executor with the derived schedule.  With ``trips == 1`` the
        schedule is computed but there is no executor trip to benefit --
        the degenerate case where inspection cannot pay off.
        """
        if trips < 1:
            raise ValueError("need at least one trip")
        report = InspectorReport()
        plans = [
            TripPlan(schedules=default_schedules, observe_label=INSPECT_LABEL)
        ]
        stats = None
        if trips == 1:
            stats = self.engine.run(plans)
            self._derive(report)
            return stats, report
        # Run the inspector trip, derive the schedule, then the executor
        # trips -- engine state (caches, clocks) carries across calls only
        # through the returned clock, so we assemble all plans up front by
        # first dry-running the inspector observation pass.
        stats = self.engine.run(plans)
        inspector_clock = stats.execution_cycles
        self._derive(report)
        report.overhead_cycles = self.cost.total_cycles(
            recorded_accesses=self._recorded_accesses(),
            num_sets=len(report.affinities),
            num_cores=self.engine.machine.mesh.num_nodes,
        )
        executor_plans = [
            TripPlan(
                schedules=report.schedules,
                observe_label=EXECUTE_LABEL if observe_executor else None,
                overhead_cycles=report.overhead_cycles if trip == 0 else 0,
            )
            for trip in range(trips - 1)
        ]
        # Continue at the inspector's finish time so machine components
        # (DRAM bank timers, network contention windows) stay consistent.
        executor_stats = self.engine.run(
            executor_plans, start_cycle=inspector_clock
        )
        # Component counters are cumulative in the machine, so the second
        # fill_stats already holds run totals; execution_cycles is absolute.
        executor_stats.overhead_cycles = report.overhead_cycles
        executor_stats.memory_stall_cycles += stats.memory_stall_cycles
        executor_stats.iterations_executed += stats.iterations_executed
        return executor_stats, report

    # ------------------------------------------------------------------
    def _recorded_accesses(self) -> int:
        table = self.engine.observations.get(INSPECT_LABEL, {})
        return sum(entry.llc_accesses for entry in table.values())

    def _derive(self, report: InspectorReport) -> None:
        """Turn trip-1 observations into affinities and schedules."""
        table = self.engine.observations.get(INSPECT_LABEL, {})
        by_nest: Dict[int, List[SetAffinity]] = {}
        organization = self.mapper.organization
        num_regions = self.mapper.partition.num_regions
        for (nest_index, set_id), entry in sorted(table.items()):
            affinity = self._affinity_from_observation(
                set_id, entry, organization, num_regions
            )
            report.affinities[(nest_index, set_id)] = affinity
            by_nest.setdefault(nest_index, []).append(affinity)
        for nest_index, affinities in by_nest.items():
            schedule = self.mapper.assign(affinities, nest_index=nest_index)
            if self.oblivious_mapper is not None:
                # The inspector observed the *actual* degraded machine, so
                # both arms share one exact affinity set; they differ only
                # in MAC/CAC/capacity tables.
                oblivious = self.oblivious_mapper.assign(
                    affinities, nest_index=nest_index
                )
                cost_aware = self.mapper.predicted_cost(
                    schedule.set_to_region, affinities
                )
                cost_oblivious = self.mapper.predicted_cost(
                    oblivious.set_to_region, affinities
                )
                chose_aware = cost_aware < cost_oblivious * (
                    1.0 - FAULT_CANDIDATE_MARGIN_OBSERVED
                )
                events = self.mapper.events
                if events is not None and events.enabled:
                    events.emit(
                        "mapper.fault_candidates",
                        nest=nest_index,
                        cost_aware=round(cost_aware, 6),
                        cost_oblivious=round(cost_oblivious, 6),
                        chosen="aware" if chose_aware else "oblivious",
                    )
                if not chose_aware:
                    schedule = oblivious
            report.schedules[nest_index] = schedule.set_to_core
            report.moved_fractions[nest_index] = schedule.moved_fraction

    def _affinity_from_observation(
        self,
        set_id: int,
        entry: ObservedSet,
        organization: LLCOrganization,
        num_regions: int,
    ) -> SetAffinity:
        mai = affinity_from_counts(
            entry.miss_mc.astype(float), len(entry.miss_mc)
        )
        if organization is LLCOrganization.PRIVATE:
            return SetAffinity(set_id=set_id, mai=mai)
        region_counts = np.zeros(num_regions, dtype=float)
        for node, count in enumerate(entry.hit_bank):
            if count:
                region_counts[self.region_of_node(node)] += count
        cai = affinity_from_counts(region_counts, num_regions)
        alpha = determine_alpha(entry.llc_hits, max(1, entry.llc_accesses))
        return SetAffinity(set_id=set_id, mai=mai, cai=cai, alpha=alpha)
