"""Iteration-set-to-core assignment (Algorithms 1 and 2).

``Mapper`` turns per-iteration-set affinity vectors into a
:class:`Schedule`:

1. **Region assignment** -- each set goes to the region minimizing its
   affinity error: ``eta(MAI, MAC(R))`` for private LLCs (Algorithm 1), the
   alpha-weighted ``alpha*eta(CAI, CAC(R)) + (1-alpha)*eta(MAI, MAC(R))``
   for shared LLCs (Algorithm 2 with the Section 3.8 weighting).
2. **Load balancing** -- the donor/receiver pass of Algorithm 1 (shared by
   both organizations).
3. **Within-region placement** -- the paper assigns a set to a core of its
   region "randomly, with the only constraint that the loads of the cores in
   the region should be more or less balanced"; the ``LEAST_LOADED``
   strategy models the ~2%-better "OS option" of Section 3.9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cache.snuca import LLCOrganization

from .affinity import AffinityVector, combined_eta, eta
from .balance import BalanceResult, balance_regions
from .proximity import (
    MacMode,
    cac_table,
    degraded_cac_table,
    degraded_mac_table,
    llc_mac_table,
    mac_table,
    region_capacities,
)
from .regions import RegionPartition


class PlacementStrategy(enum.Enum):
    STABLE_RR = "stable_rr"              # deterministic by set id (default)
    RANDOM_BALANCED = "random_balanced"  # the paper's random choice
    LEAST_LOADED = "least_loaded"        # the "OS option" (Section 3.9)


@dataclass(frozen=True)
class SetAffinity:
    """Everything the mapper needs to know about one iteration set."""

    set_id: int
    mai: AffinityVector
    cai: Optional[AffinityVector] = None
    alpha: float = 0.0
    iterations: int = 1


@dataclass
class ProximityTables:
    """MAC/CAC proximity tables (plus the degraded-topology extras).

    A pure function of (partition, organization, mac_mode, cac_self_weight,
    fault plan): building one is the expensive part of constructing a
    :class:`Mapper`, so the compile-side cache (:mod:`repro.compile`)
    memoizes these and hands them back via ``Mapper(tables=...)``.
    """

    macs: Mapping[int, AffinityVector]
    cacs: Mapping[int, AffinityVector]
    capacity: Optional[np.ndarray] = None
    mem_dist: Optional[np.ndarray] = None
    llc_dist: Optional[np.ndarray] = None


def build_proximity_tables(
    partition: RegionPartition,
    organization: LLCOrganization,
    mac_mode: MacMode = MacMode.NEAREST,
    cac_self_weight: float = 0.5,
    faults=None,
) -> ProximityTables:
    """Construct the proximity tables one :class:`Mapper` consumes."""
    if faults is not None:
        # Banks are co-located with cores, so the shared-LLC (bank-
        # anchored) and private (core-anchored) MAC coincide here just
        # as they do in the pristine tables.
        mem_dist, llc_dist = _degraded_distance_tables(partition, faults)
        return ProximityTables(
            macs=degraded_mac_table(partition, faults, mode=mac_mode),
            cacs=degraded_cac_table(
                partition, faults, self_weight=cac_self_weight
            ),
            capacity=region_capacities(partition, faults),
            mem_dist=mem_dist,
            llc_dist=llc_dist,
        )
    if organization is LLCOrganization.SHARED:
        # S-NUCA: the off-chip leg starts at the LLC bank (Section 3.8).
        macs = llc_mac_table(partition, mode=mac_mode)
    else:
        macs = mac_table(partition, mode=mac_mode)
    return ProximityTables(
        macs=macs, cacs=cac_table(partition, self_weight=cac_self_weight)
    )


@dataclass
class Schedule:
    """The mapper's product: where every iteration set runs."""

    set_to_core: Dict[int, int]
    set_to_region: Dict[int, int]
    moved_fraction: float = 0.0
    errors: Optional[np.ndarray] = None

    def core_of(self, set_id: int) -> int:
        return self.set_to_core[set_id]

    def sets_on_core(self, core: int) -> List[int]:
        return sorted(s for s, c in self.set_to_core.items() if c == core)

    def core_loads(self, num_cores: int) -> List[int]:
        loads = [0] * num_cores
        for core in self.set_to_core.values():
            loads[core] += 1
        return loads


class Mapper:
    """Location-aware iteration-set mapper for one machine configuration."""

    def __init__(
        self,
        partition: RegionPartition,
        organization: LLCOrganization,
        mac_mode: MacMode = MacMode.NEAREST,
        cac_self_weight: float = 0.5,
        placement: PlacementStrategy = PlacementStrategy.STABLE_RR,
        balance: bool = True,
        alpha_weighting: bool = True,
        seed: int = 11,
        events=None,
        faults=None,
        tables: Optional[ProximityTables] = None,
    ):
        self.partition = partition
        self.organization = organization
        self.placement = placement
        self.balance = balance
        # Optional repro.obs.EventStream: assign() narrates its decisions
        # (chosen region + eta per set, donor/receiver balance moves).
        self.events = events
        # Algorithm 2's pseudo-code sums eta1 + eta2 unweighted; the text
        # (Section 3.8) weights them by alpha.  The weighted form is the
        # default; the unweighted form is kept for the ablation study.
        self.alpha_weighting = alpha_weighting
        self._rng = np.random.default_rng(seed)
        # Degradation-aware mapping: with a repro.faults.DegradedTopology
        # attached, MAC/CAC come from effective post-fault distances and
        # the balancer's targets follow effective region capacities.
        self.faults = faults
        # A caller holding memoized tables (repro.compile) passes them in;
        # they MUST match this constructor's parameters or errors/capacity
        # would silently disagree with the topology.
        if tables is None:
            tables = build_proximity_tables(
                partition,
                organization,
                mac_mode=mac_mode,
                cac_self_weight=cac_self_weight,
                faults=faults,
            )
        self._macs = tables.macs
        self._cacs = tables.cacs
        self._capacity = tables.capacity
        if faults is not None:
            # Effective distance matrices back predicted_cost(), which the
            # compiler uses to score this mapper's schedule against the
            # oblivious candidate under the post-fault topology.
            self._mem_dist = tables.mem_dist
            self._llc_dist = tables.llc_dist

    # ------------------------------------------------------------------
    @property
    def macs(self) -> Mapping[int, AffinityVector]:
        return self._macs

    @property
    def cacs(self) -> Mapping[int, AffinityVector]:
        return self._cacs

    # ------------------------------------------------------------------
    def set_error(self, affinity: SetAffinity, region: int) -> float:
        """Affinity error of placing one set in one region."""
        return self._set_error_with(affinity, region, self._macs, self._cacs)

    def _set_error_with(
        self, affinity: SetAffinity, region: int, macs, cacs
    ) -> float:
        eta_m = eta(affinity.mai, macs[region])
        if self.organization is LLCOrganization.PRIVATE:
            return eta_m
        if affinity.cai is None:
            raise ValueError(
                f"set {affinity.set_id}: shared-LLC mapping needs a CAI vector"
            )
        eta_c = eta(affinity.cai, cacs[region])
        if not self.alpha_weighting:
            # Algorithm 2 verbatim: argmin over eta1 + eta2.
            return eta_c + eta_m
        return combined_eta(eta_c, eta_m, affinity.alpha)

    def error_matrix(self, affinities: Sequence[SetAffinity]) -> np.ndarray:
        """``errors[i, r]`` for every (set index, region) pair."""
        return self._error_matrix_with(affinities, self._macs, self._cacs)

    def _error_matrix_with(
        self, affinities: Sequence[SetAffinity], macs, cacs
    ) -> np.ndarray:
        # Broadcast eta() over every (set, region) pair at once.  The
        # last-axis sum over a C-contiguous block reduces in the same
        # pairwise order as the 1-D sum inside eta(), so this is
        # bit-identical to the per-pair scalar loop it replaces.
        n_regions = self.partition.num_regions
        mai = _stack_vectors((a.mai for a in affinities), "MAI")
        mac = _stack_vectors((macs[r] for r in range(n_regions)), "MAC")
        if mai.shape[1] != mac.shape[1]:
            raise ValueError(
                f"vector length mismatch: {mai.shape[1:]} vs {mac.shape[1:]}"
            )
        eta_m = _eta_matrix(mai, mac)
        if self.organization is LLCOrganization.PRIVATE:
            return eta_m
        for affinity in affinities:
            if affinity.cai is None:
                raise ValueError(
                    f"set {affinity.set_id}: shared-LLC mapping needs a "
                    "CAI vector"
                )
        cai = _stack_vectors((a.cai for a in affinities), "CAI")
        cac = _stack_vectors((cacs[r] for r in range(n_regions)), "CAC")
        if cai.shape[1] != cac.shape[1]:
            raise ValueError(
                f"vector length mismatch: {cai.shape[1:]} vs {cac.shape[1:]}"
            )
        eta_c = _eta_matrix(cai, cac)
        if not self.alpha_weighting:
            # Algorithm 2 verbatim: argmin over eta1 + eta2.
            return eta_c + eta_m
        alpha = np.asarray([a.alpha for a in affinities], dtype=float)
        if np.any(alpha < 0.0) or np.any(alpha > 1.0):
            raise ValueError("alpha must be within [0, 1]")
        alpha = alpha[:, None]
        return alpha * eta_c + (1.0 - alpha) * eta_m

    # ------------------------------------------------------------------
    def assign(
        self,
        affinities: Sequence[SetAffinity],
        nest_index: Optional[int] = None,
    ) -> Schedule:
        """Run the full pipeline: region assignment, balancing, placement.

        ``nest_index`` only labels the emitted telemetry events (callers
        that map one nest at a time pass it so decision streams can be
        joined back to the program structure).
        """
        if not affinities:
            return Schedule({}, {}, 0.0)
        ids = [a.set_id for a in affinities]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate iteration set ids")
        set_to_region, errors, id_errors, transfers, moved_fraction = (
            self._region_pass(
                affinities, ids, self._macs, self._cacs, self._capacity
            )
        )
        set_to_core = self._place_within_regions(set_to_region, affinities)
        if self.events is not None and self.events.enabled:
            self._emit_decisions(
                nest_index, affinities, errors, set_to_region, set_to_core,
                transfers, id_errors, moved_fraction,
            )
        return Schedule(
            set_to_core=set_to_core,
            set_to_region=set_to_region,
            moved_fraction=moved_fraction,
            errors=errors,
        )

    def _region_pass(self, affinities, ids, macs, cacs, capacity):
        """Algorithm 1/2 argmin + load balancing with one table set."""
        errors = self._error_matrix_with(affinities, macs, cacs)
        # Algorithm 1/2: argmin over regions, first minimum wins.
        set_to_region = {
            affinity.set_id: int(np.argmin(errors[i]))
            for i, affinity in enumerate(affinities)
        }
        moved_fraction = 0.0
        id_errors = _reindex_errors(errors, ids)
        transfers = []
        if self.balance:
            # Balance on a set-id-indexed error view.
            result = balance_regions(
                set_to_region, id_errors, self.partition, capacity=capacity,
            )
            set_to_region = result.set_to_region
            moved_fraction = result.moved_fraction()
            transfers = result.transfers
        return set_to_region, errors, id_errors, transfers, moved_fraction

    def predicted_cost(
        self,
        set_to_region: Dict[int, int],
        affinities: Sequence[SetAffinity],
    ) -> float:
        """Iteration-weighted expected NoC distance of one assignment.

        Each set pays its traffic-weighted effective distance: the LLC leg
        (CAI over per-region distances) and the memory leg (MAI over
        per-MC distances), alpha-combined exactly as the mapping error is.
        Distances come from the degraded topology, so detours, throttled
        links and offline MCs all price in.  Only available on mappers
        constructed with ``faults``.
        """
        if self.faults is None:
            raise ValueError("predicted_cost needs a fault-aware mapper")
        total = 0.0
        for affinity in affinities:
            region = set_to_region[affinity.set_id]
            mem = _leg_cost(affinity.mai, self._mem_dist[region])
            if (
                self.organization is LLCOrganization.SHARED
                and affinity.cai is not None
            ):
                llc = _leg_cost(affinity.cai, self._llc_dist[region])
                leg = affinity.alpha * llc + (1.0 - affinity.alpha) * mem
            else:
                leg = mem
            total += float(affinity.iterations) * leg
        return total

    def _emit_decisions(
        self, nest_index, affinities, errors, set_to_region, set_to_core,
        transfers, id_errors, moved_fraction,
    ) -> None:
        """Narrate one assign() into the event stream (decision level)."""
        emit = self.events.emit
        for i, affinity in enumerate(affinities):
            set_id = affinity.set_id
            region = set_to_region[set_id]
            emit(
                "mapper.assign",
                nest=nest_index,
                set=set_id,
                region=region,
                argmin_region=int(np.argmin(errors[i])),
                eta=round(float(errors[i, region]), 6),
                core=set_to_core[set_id],
                iterations=affinity.iterations,
            )
        for set_id, donor, receiver in transfers:
            emit(
                "balance.move",
                nest=nest_index,
                set=set_id,
                donor=donor,
                receiver=receiver,
                regret=round(
                    float(id_errors[set_id, receiver]
                          - id_errors[set_id, donor]), 6,
                ),
            )
        emit(
            "mapper.summary",
            nest=nest_index,
            sets=len(affinities),
            moved=len(transfers),
            moved_fraction=round(moved_fraction, 6),
        )

    # ------------------------------------------------------------------
    def _place_within_regions(
        self,
        set_to_region: Dict[int, int],
        affinities: Sequence[SetAffinity],
    ) -> Dict[int, int]:
        sizes = {a.set_id: a.iterations for a in affinities}
        by_region: Dict[int, List[int]] = {}
        for set_id, region in set_to_region.items():
            by_region.setdefault(region, []).append(set_id)
        set_to_core: Dict[int, int] = {}
        for region, members in sorted(by_region.items()):
            cores = self.partition.nodes_in_region(region)
            members = sorted(members)
            if self.placement is PlacementStrategy.STABLE_RR:
                # Deterministic: deal sets over the region's cores in set-id
                # order.  Unlike the paper's random choice this keeps the
                # set -> core relation consistent across loop nests, so a
                # set that lands in the same region in two nests reuses the
                # same core's private caches (the round-robin baseline gets
                # this alignment for free; losing it would hand the
                # baseline an artificial advantage).
                for k, set_id in enumerate(members):
                    set_to_core[set_id] = cores[k % len(cores)]
            elif self.placement is PlacementStrategy.RANDOM_BALANCED:
                # Random order, then round-robin over the cores: random
                # choice under the "loads more or less balanced" constraint.
                order = list(members)
                self._rng.shuffle(order)
                for k, set_id in enumerate(order):
                    set_to_core[set_id] = cores[k % len(cores)]
            else:
                # Least-loaded by iteration count (the OS option).
                load = {core: 0 for core in cores}
                for set_id in sorted(
                    members, key=lambda s: -sizes.get(s, 1)
                ):
                    core = min(load, key=lambda c: (load[c], c))
                    set_to_core[set_id] = core
                    load[core] += sizes.get(set_id, 1)
        return set_to_core


FAULT_CANDIDATE_MARGIN_OBSERVED = 0.02
"""Relative predicted-cost improvement the fault-aware candidate must show
over the oblivious fallback when its affinities are *observed* (the
inspector path: exact per-set MAI/CAI measured on the degraded machine).
The distance model prices detours and throttles faithfully but not
queueing, so sub-percent predicted margins are noise; demanding a real
margin keeps "fault-aware never worse than oblivious" true in simulation,
not just in the model."""

FAULT_CANDIDATE_MARGIN_ESTIMATED = 0.25
"""The same bar for the compile-time path, whose affinities come from
sampled CME estimates.  Estimation error stacks on top of the model's
queueing blindness -- a concentrated post-fault placement can look far
cheaper by distance yet saturate the few links feeding the surviving
resources -- so the aware candidate must win by a wide margin before the
compiler abandons the known-safe oblivious schedule."""

_UNREACHABLE_COST = 1e9
"""Stand-in distance for unreachable targets in candidate scoring.  Both
candidates price an unreachable-but-touched target identically, so the
tie-break (prefer oblivious) decides and no inf/nan arithmetic occurs."""


def _leg_cost(weights: AffinityVector, dists: np.ndarray) -> float:
    """Traffic-weighted mean distance of one leg (LLC or memory)."""
    weights = np.asarray(weights, dtype=float)
    mask = weights > 0
    if not mask.any():
        return 0.0
    d = np.where(np.isfinite(dists), dists, _UNREACHABLE_COST)
    return float(np.sum(weights[mask] * d[mask]))


def _degraded_distance_tables(partition, topology):
    """Effective per-region distance matrices under a degraded topology.

    Returns ``(mem, llc)``: ``mem[r, m]`` is the mean effective distance
    (in hop units) from region ``r``'s nodes to MC ``m`` (``inf`` when the
    MC is offline); ``llc[r, q]`` the mean node-pair distance between
    regions ``r`` and ``q``.
    """
    mesh = partition.mesh
    num_mcs = len(mesh.mcs)
    n = partition.num_regions
    region_nodes = [partition.nodes_in_region(r) for r in range(n)]
    mem = np.zeros((n, num_mcs), dtype=float)
    llc = np.zeros((n, n), dtype=float)
    for r in range(n):
        nodes = region_nodes[r]
        for mc in range(num_mcs):
            mem[r, mc] = float(np.mean(
                [topology.mc_distance_units(node, mc) for node in nodes]
            ))
        for q in range(n):
            llc[r, q] = float(np.mean([
                topology.distance_units(a, b)
                for a in nodes for b in region_nodes[q]
            ]))
    return mem, llc


def _stack_vectors(vectors, label: str) -> np.ndarray:
    """Rows of equal-length affinity vectors as one float64 matrix."""
    try:
        return np.asarray(list(vectors), dtype=float)
    except ValueError as exc:  # ragged rows
        raise ValueError(f"{label} vectors differ in length") from exc


def _eta_matrix(rows: np.ndarray, tables: np.ndarray) -> np.ndarray:
    """``eta(rows[i], tables[r])`` for every pair, bit-exactly.

    ``np.abs(...)`` materializes a C-contiguous (sets, regions, L) array,
    so the axis=2 reduction sums each contiguous length-L block with the
    same pairwise algorithm the scalar ``eta`` uses on its 1-D operand.
    """
    diffs = np.abs(rows[:, None, :] - tables[None, :, :])
    return diffs.sum(axis=2) / rows.shape[1]


def _reindex_errors(errors: np.ndarray, ids: Sequence[int]) -> np.ndarray:
    """View the error matrix indexed by set id rather than position."""
    max_id = max(ids)
    out = np.full((max_id + 1, errors.shape[1]), np.inf)
    for pos, set_id in enumerate(ids):
        out[set_id] = errors[pos]
    return out
