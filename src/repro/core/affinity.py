"""Affinity vectors and the paper's similarity (error) measure.

An affinity vector is a normalized weight distribution: ``MAI``/``MAC`` over
memory controllers, ``CAI``/``CAC`` over regions.  The difference between
two vectors (Section 3.4) is

    eta(d, d') = sum_k |d_k - d'_k| / m

-- the L1 distance averaged over the ``m`` entries.  Lower eta means higher
similarity; the mapping algorithms pick the region whose MAC/CAC is closest
to an iteration set's MAI/CAI under this measure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

AffinityVector = np.ndarray


def affinity_from_counts(counts: Sequence[float], length: int) -> AffinityVector:
    """Normalize raw per-target counts into an affinity vector.

    A zero total yields the all-zero vector (an iteration set with no
    off-chip accesses has no memory affinity at all -- eta against any MAC
    then degenerates to the MAC's own mass, treating all regions equally
    modulo their spread).
    """
    if len(counts) != length:
        raise ValueError(f"expected {length} entries, got {len(counts)}")
    vec = np.asarray(counts, dtype=float)
    if np.any(vec < 0):
        raise ValueError("affinity counts cannot be negative")
    total = vec.sum()
    if total > 0:
        vec = vec / total
    return vec


def affinity_from_targets(
    targets: Iterable[int], length: int, weights: Mapping[int, float] = None
) -> AffinityVector:
    """Build a vector by counting target ids (optionally weighted)."""
    counts = np.zeros(length, dtype=float)
    if weights is None:
        for t in targets:
            counts[t] += 1.0
    else:
        for t in targets:
            counts[t] += weights.get(t, 1.0)
    return affinity_from_counts(counts, length)


def eta(a: AffinityVector, b: AffinityVector) -> float:
    """The paper's error between two affinity vectors (Section 3.4)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"vector length mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum() / a.size)


def combined_eta(
    eta_cache: float, eta_memory: float, alpha: float
) -> float:
    """Weighted overall error for shared LLCs: ``alpha*eta_c + (1-alpha)*eta_m``.

    ``alpha`` is the estimated fraction of accesses served on-chip
    (Section 3.8 / Section 4): all-hits pushes the weight onto cache
    affinity, all-misses onto memory affinity.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be within [0, 1]")
    return alpha * eta_cache + (1.0 - alpha) * eta_memory


def is_normalized(vec: AffinityVector, tol: float = 1e-9) -> bool:
    """True when the vector is a probability distribution (or all-zero)."""
    vec = np.asarray(vec, dtype=float)
    if np.any(vec < -tol):
        return False
    total = vec.sum()
    return abs(total - 1.0) <= tol or abs(total) <= tol


def best_region(
    errors: Mapping[int, float]
) -> int:
    """Region with the minimum error; ties resolved to the lowest id.

    Matches Algorithm 1/2's strict-inequality update (the first region
    reaching the minimum wins when regions are scanned in id order).
    """
    if not errors:
        raise ValueError("no candidate regions")
    best_id, best_err = None, float("inf")
    for region in sorted(errors):
        if errors[region] < best_err:
            best_id, best_err = region, errors[region]
    return best_id
