"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation section.  Each
returns plain data (dicts keyed by application / variant) that the
benchmark targets print via :mod:`repro.experiments.report`; nothing here
depends on pytest so the experiments are equally usable from scripts.

All functions accept ``apps`` (subset of the suite; None = all 21) and
``scale`` (input-size multiplier; 1.0 = the designed sizes, where the
footprint/cache ratios match the paper's regime -- small scales are only
meaningful for smoke tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.regions import RegionPartition
from repro.sim.config import DEFAULT_CONFIG, SystemConfig, sensitivity_variants
from repro.sim.stats import Comparison, geomean, mean, percent_reduction
from repro.workloads.suite import (
    KNL_SCALING_APPS,
    LAYOUT_COMPARISON_APPS,
    SUITE_ORDER,
    build_workload,
)

from .harness import DEFAULT_CME_ACCURACY, compare, run_workload


def _apps(apps: Optional[Sequence[str]]) -> List[str]:
    return list(apps) if apps is not None else list(SUITE_ORDER)


def _both_orgs(config: SystemConfig) -> Dict[str, SystemConfig]:
    return {"private": config.private_llc(), "shared": config.shared_llc()}


# ----------------------------------------------------------------------
# Figure 2 -- ideal (zero-latency) network potential
# ----------------------------------------------------------------------
def figure02_ideal_network(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, float]]:
    """Execution-time improvement of a zero-latency network, per app/org.

    Both runs use the *default* mapping; the delta is pure network cost --
    the paper's upper bound on what any network optimization can recover.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in _apps(apps):
        workload = build_workload(name)
        row: Dict[str, float] = {}
        for org, cfg in _both_orgs(config).items():
            real = run_workload(workload, cfg, mapping="default", scale=scale)
            ideal = run_workload(
                workload, cfg.ideal_network(), mapping="default", scale=scale
            )
            row[org] = percent_reduction(
                real.stats.execution_cycles, ideal.stats.execution_cycles
            )
        out[name] = row
    return out


# ----------------------------------------------------------------------
# Figures 7 and 8 -- the headline results
# ----------------------------------------------------------------------
def _headline(
    config: SystemConfig,
    apps: Optional[Sequence[str]],
    scale: float,
    cme_accuracy: float,
    want_cai: bool,
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    partition = RegionPartition(
        config.build_mesh(), config.region_w, config.region_h
    )
    for name in _apps(apps):
        workload = build_workload(name)
        comparison, _, opt = compare(
            workload,
            config,
            scale=scale,
            cme_accuracy=cme_accuracy,
            observe=True,
        )
        mai_errors = opt.mai_errors()
        row = {
            "mai_error": mean(mai_errors),
            "net_reduction": comparison.network_latency_reduction,
            "time_reduction": comparison.execution_time_reduction,
            "overhead": comparison.overhead_percent,
            "moved_fraction": 100.0 * opt.moved_fraction,
        }
        if want_cai:
            row["cai_error"] = mean(opt.cai_errors(partition.region_of_node))
        out[name] = row
    return out


def figure07_private(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    cme_accuracy: float = DEFAULT_CME_ACCURACY,
) -> Dict[str, Dict[str, float]]:
    """Figure 7: MAI error, network-latency and exec-time reduction,
    runtime overhead -- private LLCs."""
    return _headline(
        config.private_llc(), apps, scale, cme_accuracy, want_cai=False
    )


def figure08_shared(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    cme_accuracy: float = DEFAULT_CME_ACCURACY,
) -> Dict[str, Dict[str, float]]:
    """Figure 8: same as Figure 7 plus CAI error -- shared (S-NUCA) LLCs."""
    return _headline(
        config.shared_llc(), apps, scale, cme_accuracy, want_cai=True
    )


def summarize(per_app: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Geometric means over applications, metric by metric.

    Delegates to :func:`repro.experiments.report.geomean_summary`, which
    reduces in sorted-key order so the aggregate does not depend on the
    order the per-app rows were inserted (serial figure loops insert in
    suite order; parallel sweeps in completion order).
    """
    from .report import geomean_summary

    return geomean_summary(per_app)


# ----------------------------------------------------------------------
# Figure 9 -- hardware-parameter sensitivity
# ----------------------------------------------------------------------
def figure09_sensitivity(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """variant -> org -> {net_reduction, time_reduction} (geomeans)."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, variant in sensitivity_variants(config).items():
        out[label] = {}
        for org, cfg in _both_orgs(variant).items():
            nets, times = [], []
            for name in _apps(apps):
                comparison, _, _ = compare(
                    build_workload(name), cfg, scale=scale
                )
                nets.append(comparison.network_latency_reduction)
                times.append(comparison.execution_time_reduction)
            out[label][org] = {
                "net_reduction": geomean(nets),
                "time_reduction": geomean(times),
            }
    return out


# ----------------------------------------------------------------------
# Figure 10 -- region count and iteration-set size sweeps
# ----------------------------------------------------------------------
def figure10_regions(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    region_counts: Sequence[int] = (4, 6, 9, 18, 36),
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """org -> region count -> geomean reductions (Figures 10a/10b)."""
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for org, cfg in _both_orgs(config).items():
        out[org] = {}
        for count in region_counts:
            nets, times = [], []
            for name in _apps(apps):
                comparison, _, _ = compare(
                    build_workload(name),
                    cfg,
                    scale=scale,
                    compiler_kwargs={"num_regions": count},
                )
                nets.append(comparison.network_latency_reduction)
                times.append(comparison.execution_time_reduction)
            out[org][count] = {
                "net_reduction": geomean(nets),
                "time_reduction": geomean(times),
            }
    return out


def figure10_iteration_sets(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    fractions: Sequence[float] = (0.001, 0.0025, 0.005, 0.0075, 0.01, 0.02),
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """org -> set-size fraction -> geomean reductions (Figures 10c/10d)."""
    out: Dict[str, Dict[float, Dict[str, float]]] = {}
    for org, cfg in _both_orgs(config).items():
        out[org] = {}
        for fraction in fractions:
            nets, times = [], []
            for name in _apps(apps):
                comparison, _, _ = compare(
                    build_workload(name),
                    cfg,
                    scale=scale,
                    compiler_kwargs={"iteration_set_fraction": fraction},
                )
                nets.append(comparison.network_latency_reduction)
                times.append(comparison.execution_time_reduction)
            out[org][fraction] = {
                "net_reduction": geomean(nets),
                "time_reduction": geomean(times),
            }
    return out


# ----------------------------------------------------------------------
# Figure 11 -- data distribution combinations
# ----------------------------------------------------------------------
def figure11_distribution(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, float]]:
    """(cache-bank, memory-bank) granularity combo -> org -> geomean.

    Combos follow the paper's Figure 11 labels, tuple order
    (cache banks, memory banks).
    """
    from repro.memory.distribution import Granularity

    combos = {
        "(cache line, page)": (Granularity.CACHE_LINE, Granularity.PAGE),
        "(cache line, cache line)": (
            Granularity.CACHE_LINE,
            Granularity.CACHE_LINE,
        ),
        "(page, page)": (Granularity.PAGE, Granularity.PAGE),
        "(page, cache line)": (Granularity.PAGE, Granularity.CACHE_LINE),
    }
    out: Dict[str, Dict[str, float]] = {}
    for label, (bank_gran, mc_gran) in combos.items():
        variant = config.with_updates(
            bank_granularity=bank_gran, mc_granularity=mc_gran
        )
        out[label] = {}
        for org, cfg in _both_orgs(variant).items():
            times = []
            for name in _apps(apps):
                comparison, _, _ = compare(
                    build_workload(name), cfg, scale=scale
                )
                times.append(comparison.execution_time_reduction)
            out[label][org] = geomean(times)
    return out


# ----------------------------------------------------------------------
# Figure 12 -- DDR4
# ----------------------------------------------------------------------
def figure12_ddr4(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, float]]:
    """app -> org -> exec-time reduction with DDR-4 devices."""
    ddr4 = config.with_ddr4()
    out: Dict[str, Dict[str, float]] = {}
    for name in _apps(apps):
        workload = build_workload(name)
        out[name] = {}
        for org, cfg in _both_orgs(ddr4).items():
            comparison, _, _ = compare(workload, cfg, scale=scale)
            out[name][org] = comparison.execution_time_reduction
    return out


# ----------------------------------------------------------------------
# Figure 13 -- LA vs data layout optimization (DO)
# ----------------------------------------------------------------------
def figure13_layout(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Sequence[str] = LAYOUT_COMPARISON_APPS,
    scale: float = 1.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """app -> org -> {LA, DO, LA+DO} exec-time reductions."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in apps:
        workload = build_workload(name)
        out[name] = {}
        for org, cfg in _both_orgs(config).items():
            base = run_workload(workload, cfg, mapping="default", scale=scale)
            row = {}
            for label, mapping in (("LA", "la"), ("DO", "do"), ("LA+DO", "la+do")):
                opt = run_workload(workload, cfg, mapping=mapping, scale=scale)
                row[label] = percent_reduction(
                    base.stats.execution_cycles, opt.stats.execution_cycles
                )
            out[name][org] = row
    return out


# ----------------------------------------------------------------------
# Figure 14 -- LA vs hardware-based computation placement
# ----------------------------------------------------------------------
def figure14_hardware(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """app -> org -> {compiler, hardware} exec-time reductions."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in _apps(apps):
        workload = build_workload(name)
        out[name] = {}
        for org, cfg in _both_orgs(config).items():
            base = run_workload(workload, cfg, mapping="default", scale=scale)
            row = {}
            for label, mapping in (("compiler", "la"), ("hardware", "hardware")):
                opt = run_workload(workload, cfg, mapping=mapping, scale=scale)
                row[label] = percent_reduction(
                    base.stats.execution_cycles, opt.stats.execution_cycles
                )
            out[name][org] = row
    return out


# ----------------------------------------------------------------------
# Figure 15 -- perfect MAI/CAI/CME estimation ("optimality")
# ----------------------------------------------------------------------
def figure15_perfect_estimation(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """app -> org -> {realistic, perfect} exec-time reductions.

    ``perfect`` uses a 100%-accurate CME; ``realistic`` the default 85%
    accuracy (the paper's 76-93% band).  Irregular codes learn affinities
    at run time, so both modes coincide for them by construction -- the
    paper makes the same observation.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in _apps(apps):
        workload = build_workload(name)
        out[name] = {}
        for org, cfg in _both_orgs(config).items():
            realistic, _, _ = compare(
                workload, cfg, scale=scale, cme_accuracy=DEFAULT_CME_ACCURACY
            )
            perfect, _, _ = compare(
                workload, cfg, scale=scale, cme_accuracy=1.0
            )
            out[name][org] = {
                "realistic": realistic.execution_time_reduction,
                "perfect": perfect.execution_time_reduction,
            }
    return out


# ----------------------------------------------------------------------
# Figures 16 / 17 -- KNL cluster modes
# ----------------------------------------------------------------------
def figure16_knl_modes(
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, float]]:
    """mode/mapping -> geomean exec-time improvement vs original all-to-all.

    Rows: original quadrant, original SNC-4, optimized all-to-all,
    optimized quadrant, optimized SNC-4 (Figure 16's bars).
    """
    from repro.baselines.default import default_schedules, partition_all_nests
    from repro.knl import ClusterMode, first_touch_pages, knl_config

    names = _apps(apps)
    baselines: Dict[str, float] = {}
    variants: Dict[str, List[float]] = {
        "Original quadrant": [],
        "Original SNC-4": [],
        "Optimized all-to-all": [],
        "Optimized quadrant": [],
        "Optimized SNC-4": [],
    }
    for name in names:
        workload = build_workload(name)
        base_cfg = knl_config(ClusterMode.ALL_TO_ALL)
        ref = run_workload(
            workload, base_cfg, mapping="default", scale=scale
        ).stats.execution_cycles
        # SNC-4's defining property is first-touch page placement: build the
        # per-workload page->quadrant table from the default schedule.
        instance = workload.instantiate(
            page_bytes=base_cfg.page_bytes, scale=scale
        )
        iteration_sets = partition_all_nests(
            instance, set_fraction=base_cfg.iteration_set_fraction
        )
        schedules = default_schedules(instance, iteration_sets, 36)
        touch_table = first_touch_pages(
            instance, iteration_sets, schedules, base_cfg.layout(), 6, 6
        )

        def improvement(mode, mapping):
            table = touch_table if mode is ClusterMode.SNC4 else None
            cfg = knl_config(mode, page_to_quadrant=table)
            run = run_workload(workload, cfg, mapping=mapping, scale=scale)
            return percent_reduction(ref, run.stats.execution_cycles)

        variants["Original quadrant"].append(
            improvement(ClusterMode.QUADRANT, "default")
        )
        variants["Original SNC-4"].append(
            improvement(ClusterMode.SNC4, "default")
        )
        variants["Optimized all-to-all"].append(
            improvement(ClusterMode.ALL_TO_ALL, "la")
        )
        variants["Optimized quadrant"].append(
            improvement(ClusterMode.QUADRANT, "la")
        )
        variants["Optimized SNC-4"].append(
            improvement(ClusterMode.SNC4, "la")
        )
    return {label: {"geomean": geomean(vals)} for label, vals in variants.items()}


def figure17_knl_scaling(
    apps: Sequence[str] = KNL_SCALING_APPS,
    base_scale: float = 0.5,
    factors: Sequence[float] = (1.0, 2.0, 4.0),
) -> Dict[str, Dict[float, float]]:
    """app -> input-scale factor -> exec-time improvement (quadrant mode).

    The paper's observation: LA's relative improvement grows with input
    size because the unoptimized code degrades faster.
    """
    from repro.knl import ClusterMode, knl_config

    cfg = knl_config(ClusterMode.QUADRANT)
    out: Dict[str, Dict[float, float]] = {}
    for name in apps:
        workload = build_workload(name)
        out[name] = {}
        for factor in factors:
            comparison, _, _ = compare(
                workload, cfg, scale=base_scale * factor
            )
            out[name][factor] = comparison.execution_time_reduction
    return out


# ----------------------------------------------------------------------
# Table 3 -- benchmark properties
# ----------------------------------------------------------------------
def table03_properties(
    config: SystemConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> List[Dict[str, object]]:
    """Static program properties plus the load-balance moved fraction."""
    rows: List[Dict[str, object]] = []
    for name in _apps(apps):
        workload = build_workload(name)
        result = run_workload(workload, config, mapping="la", scale=scale)
        instance = workload.instantiate(
            page_bytes=config.page_bytes, scale=scale
        )
        from repro.ir.iterspace import partition_iteration_sets

        total_sets = sum(
            len(
                partition_iteration_sets(
                    instance.nest_domain(i).size,
                    set_fraction=config.iteration_set_fraction,
                )
            )
            for i in range(len(instance.program.nests))
        )
        rows.append(
            {
                "benchmark": name,
                "loop_nests": workload.num_loop_nests,
                "arrays": workload.num_arrays,
                "iteration_sets": total_sets,
                "moved_percent": 100.0 * result.moved_fraction,
                "regular": workload.regular,
            }
        )
    return rows
