"""Experiment harness and per-figure reproductions."""

from .harness import (
    DEFAULT_CME_ACCURACY,
    MAPPINGS,
    RunResult,
    compare,
    run_workload,
)

__all__ = [
    "DEFAULT_CME_ACCURACY",
    "MAPPINGS",
    "RunResult",
    "compare",
    "run_workload",
]
