"""Experiment harness: run one workload under one configuration + mapping.

``run_workload`` is the single entry point every figure reproduction uses.
Mappings:

* ``default``  -- round-robin baseline (Section 5, "Default Computation
                  Mapping").
* ``la``       -- the paper's location-aware mapping: compile-time pipeline
                  for regular codes, inspector-executor for irregular ones.
* ``hardware`` -- the Das-style intensity-ranked placement (Figure 14).
* ``do``       -- data layout optimization only (Figure 13): default
                  schedule over re-homed pages.
* ``la+do``    -- layout remap first, then the location-aware schedule
                  computed against the remapped placement.

Measurement methodology (paper, Section 5: "After the warm-up phase we
simulated each application ..."): every run simulates distinct *phases* --
a cold trip, for the inspector path a migration trip, and a steady-state
trip -- and composes the reported execution time as

    total = cold + [inspector overhead] + [migration] + remaining * steady

for the workload's modeled trip count.  Network statistics are taken from
the steady-state trip only, matching the paper's warmed-up measurements.
Any mapping can run on an ideal network via ``config.ideal_network()``
(Figure 2).  ``cme_accuracy`` defaults to the middle of the paper's
reported 76-93% band; pass 1.0 for the Figure 15 oracle.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analyze import gate as _analyze_gate
from repro.baselines.default import default_schedules, partition_all_nests
from repro.baselines.hardware import hardware_schedules
from repro.baselines.layout import build_layout_remap
from repro.cme.equations import CacheMissEstimator
from repro.core.analysis import mai_error
from repro.core.inspector import (
    EXECUTE_LABEL,
    INSPECT_LABEL,
    InspectorCost,
    InspectorReport,
)
from repro.core.pipeline import CompiledSchedule, LocationAwareCompiler
from repro.obs import Telemetry, build_manifest
from repro.sim.config import SystemConfig
from repro.sim.engine import ExecutionEngine, TripPlan
from repro.sim.machine import Manycore
from repro.sim.stats import Comparison, RunStats
from repro.sim.trace import ProgramTrace
from repro.workloads.base import Workload

DEFAULT_CME_ACCURACY = 0.85
OBSERVE_RUN = "run"
MODELED_TRIPS = 12
"""Timing-loop trips the measured execution models (inspector amortization)."""

MAPPINGS = ("default", "la", "hardware", "do", "la+do")


@dataclass
class RunResult:
    """Stats plus the artifacts needed by accuracy/overhead figures."""

    stats: RunStats
    compiled: Optional[CompiledSchedule] = None
    inspector_report: Optional[InspectorReport] = None
    engine: Optional[ExecutionEngine] = None
    moved_fraction: float = 0.0

    def mai_errors(self) -> List[float]:
        """Per-set eta between predicted and observed MAI.

        Regular codes: compile-time prediction vs the steady-trip
        observation.  Irregular codes: inspector-trip MAI vs executor-trip
        observation.
        """
        if self.engine is None:
            return []
        errors: List[float] = []
        if self.compiled is not None:
            source, label = self.compiled.affinities, OBSERVE_RUN
        elif self.inspector_report is not None:
            source, label = self.inspector_report.affinities, EXECUTE_LABEL
        else:
            return []
        # Sorted reduction: the affinity dict's insertion order depends on
        # how the schedule was derived; error lists must not (float
        # aggregation is order-sensitive, and the parallel sweep executor
        # compares them field-identically across run orders).
        for (nest, set_id), affinity in sorted(source.items()):
            observed = self.engine.observed_mai(label, nest, set_id)
            if observed is not None and observed.sum() > 0:
                errors.append(mai_error(affinity.mai, observed))
        return errors

    def cai_errors(self, region_of_node) -> List[float]:
        """Per-set eta between predicted and observed CAI (shared LLC)."""
        if self.engine is None:
            return []
        if self.compiled is not None:
            source, label = self.compiled.affinities, OBSERVE_RUN
        elif self.inspector_report is not None:
            source, label = self.inspector_report.affinities, EXECUTE_LABEL
        else:
            return []
        errors: List[float] = []
        for (nest, set_id), affinity in sorted(source.items()):
            if affinity.cai is None:
                continue
            observed = self.engine.observed_cai_regions(
                label, nest, set_id, region_of_node
            )
            if observed is not None and observed.sum() > 0:
                errors.append(mai_error(affinity.cai, observed))
        return errors


@dataclass
class _NetSnapshot:
    packets: int = 0
    latency: int = 0
    hops: int = 0
    flit_hops: int = 0
    queueing: int = 0

    @classmethod
    def of(cls, machine: Manycore) -> "_NetSnapshot":
        s = machine.network.stats
        return cls(s.packets, s.total_latency, s.total_hops, s.flit_hops,
                   s.total_queueing)

    def diff_into(self, machine: Manycore, stats: RunStats) -> None:
        s = machine.network.stats
        stats.network_packets = s.packets - self.packets
        stats.network_total_latency = s.total_latency - self.latency
        stats.network_total_hops = s.total_hops - self.hops
        stats.network_flit_hops = s.flit_hops - self.flit_hops


def _build_translation(mapping, instance, iteration_sets, config):
    if mapping not in ("do", "la+do"):
        return None
    mesh = config.build_mesh()
    schedules = default_schedules(instance, iteration_sets, mesh.num_nodes)
    return build_layout_remap(
        instance=instance,
        iteration_sets=iteration_sets,
        default_schedules=schedules,
        mesh=mesh,
        distribution=config.build_distribution(),
    )


def run_workload(
    workload: Workload,
    config: SystemConfig,
    mapping: str = "default",
    scale: float = 1.0,
    trips: Optional[int] = None,
    cme_accuracy: float = DEFAULT_CME_ACCURACY,
    observe: bool = False,
    seed: int = 11,
    compiler_kwargs: Optional[dict] = None,
    inspector_cost: Optional[InspectorCost] = None,
    telemetry: Optional[Telemetry] = None,
    analyze_gate: bool = False,
    fault_plan=None,
    fault_aware: bool = True,
    compile_cache="auto",
) -> RunResult:
    """Simulate one workload end to end; returns stats + artifacts.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) degrades the
    simulated hardware -- downed/throttled links, hotspot routers,
    offline LLC banks, throttled/offline MCs.  With ``fault_aware=True``
    (default) the location-aware compiler maps against the degraded
    machine; ``fault_aware=False`` keeps the mapping oblivious for A/B
    comparison.  An empty plan is identical to no plan at all.

    ``analyze_gate=True`` runs the :mod:`repro.analyze` static checks
    (parallel-safety certification plus config/mapping invariants) before
    any cycle is simulated and raises
    :class:`repro.analyze.AnalysisError` on error-severity findings.

    ``trips`` overrides the modeled timing-loop trip count (default
    ``MODELED_TRIPS``); the number of *simulated* trips stays 2-3 (cold /
    migration / steady) regardless, with the remainder extrapolated from
    the steady-state trip.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) attaches the run's
    observability hub: phase timers around setup / compile / each simulated
    trip, spatial traffic accumulators collected off the machine, mapper
    decision events, and a run manifest on ``result.stats.manifest``.  A
    ``None`` or disabled hub costs nothing.

    ``compile_cache`` memoizes the compile-side artifacts (CME estimates,
    affinity vectors, proximity tables): ``"auto"`` (default) uses the
    process-wide :func:`repro.compile.get_compile_cache`; a
    :class:`repro.compile.CompileCache` instance is used directly; ``None``
    or ``False`` disables memoization.  All three modes produce
    byte-identical results -- the cache is a pure compile-time speedup.
    """
    if mapping not in MAPPINGS:
        raise ValueError(f"unknown mapping {mapping!r}; one of {MAPPINGS}")
    if compile_cache == "auto":
        from repro.compile import get_compile_cache

        compile_cache = get_compile_cache()
    elif not compile_cache:
        compile_cache = None
    cache_counts_before = (
        compile_cache.counter_snapshot() if compile_cache is not None else None
    )
    if fault_plan is not None and fault_plan.is_empty:
        fault_plan = None
    if analyze_gate:
        _analyze_gate(workload=workload, config=config, fault_plan=fault_plan)
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    wall_start = time.perf_counter()

    def _timed(name):
        return telemetry.phase(name) if telemetry is not None else nullcontext()

    modeled_trips = trips if trips is not None else MODELED_TRIPS
    if modeled_trips < 3:
        raise ValueError("modeled trip count must be at least 3")
    with _timed("setup"):
        instance = workload.instantiate(
            page_bytes=config.page_bytes, scale=scale
        )
        compiler_kwargs = dict(compiler_kwargs or {})
        set_fraction = compiler_kwargs.pop(
            "iteration_set_fraction", config.iteration_set_fraction
        )
        iteration_sets = partition_all_nests(
            instance, set_fraction=set_fraction
        )
        translation = _build_translation(
            mapping, instance, iteration_sets, config
        )
        machine = Manycore(
            config, translation=translation, telemetry=telemetry,
            faults=fault_plan,
        )
        trace = ProgramTrace(instance, iteration_sets)
        engine = ExecutionEngine(machine, trace)
        num_cores = machine.mesh.num_nodes
        base_schedules = default_schedules(instance, iteration_sets, num_cores)
    stats = RunStats()

    def run_phase(schedules, label=None, start=0, overhead=0, phase="sim"):
        with _timed(phase):
            phase_stats = engine.run(
                [TripPlan(schedules=schedules, observe_label=label,
                          overhead_cycles=overhead)],
                start_cycle=start,
            )
        stats.memory_stall_cycles += phase_stats.memory_stall_cycles
        stats.iterations_executed += phase_stats.iterations_executed
        return phase_stats.execution_cycles

    wants_la = mapping in ("la", "la+do")
    compiled: Optional[CompiledSchedule] = None
    report: Optional[InspectorReport] = None
    moved = 0.0

    if not wants_la or workload.regular:
        # Single-schedule runs: cold trip, then a steady trip we measure.
        if wants_la:
            # Constructing the compiler builds (or fetches) the MAC/CAC
            # proximity tables, so it counts as compile-phase work.
            with _timed("compile"):
                compiler = _build_compiler(
                    config, cme_accuracy, set_fraction, seed, compiler_kwargs,
                    telemetry=telemetry, fault_plan=fault_plan,
                    fault_aware=fault_aware, compile_cache=compile_cache,
                )
                compiled = compiler.compile(instance)
            schedules = compiled.schedules
            moved = compiled.avg_moved_fraction
        elif mapping == "hardware":
            estimator = CacheMissEstimator(
                llc_size_bytes=config.l2_size_bytes,
                llc_assoc=config.l2_assoc,
                line_bytes=config.l2_line_bytes,
                accuracy=cme_accuracy,
                seed=seed,
            )
            schedules = hardware_schedules(
                instance, iteration_sets, machine.mesh, estimator
            )
        else:
            schedules = base_schedules
        cold_end = run_phase(schedules, phase="sim.cold")
        snap = _NetSnapshot.of(machine)
        label = OBSERVE_RUN if (observe or wants_la) else None
        steady_end = run_phase(
            schedules, label=label, start=cold_end, phase="sim.steady"
        )
        steady = steady_end - cold_end
        snap.diff_into(machine, stats)
        stats.execution_cycles = cold_end + (modeled_trips - 1) * steady
    else:
        # Irregular location-aware: inspector trip (default schedule,
        # observed), migration trip, steady trip.
        from repro.core.inspector import InspectorExecutor

        with _timed("compile"):
            compiler = _build_compiler(
                config, cme_accuracy, set_fraction, seed, compiler_kwargs,
                telemetry=telemetry, fault_plan=fault_plan,
                fault_aware=fault_aware, compile_cache=compile_cache,
            )
        inspector = InspectorExecutor(
            engine=engine,
            mapper=compiler.mapper,
            region_of_node=compiler.partition.region_of_node,
            cost=inspector_cost,
            oblivious_mapper=compiler.oblivious_mapper,
        )
        inspect_end = run_phase(
            base_schedules, label=INSPECT_LABEL, phase="sim.inspect"
        )
        report = InspectorReport()
        with _timed("compile"):
            inspector._derive(report)
        report.overhead_cycles = inspector.cost.total_cycles(
            recorded_accesses=inspector._recorded_accesses(),
            num_sets=len(report.affinities),
            num_cores=num_cores,
        )
        # A nest whose accesses all hit in L1 during inspection produced no
        # observations and hence no derived schedule: keep it round-robin.
        for nest_index, base in base_schedules.items():
            report.schedules.setdefault(nest_index, base)
        moved = report.avg_moved_fraction
        migrate_end = run_phase(
            report.schedules, start=inspect_end,
            overhead=report.overhead_cycles, phase="sim.migrate",
        )
        snap = _NetSnapshot.of(machine)
        steady_end = run_phase(
            report.schedules, label=EXECUTE_LABEL, start=migrate_end,
            phase="sim.steady",
        )
        steady = steady_end - migrate_end
        snap.diff_into(machine, stats)
        stats.overhead_cycles = report.overhead_cycles
        stats.execution_cycles = migrate_end + (modeled_trips - 2) * steady

    machine_stats = RunStats()
    machine.fill_stats(machine_stats)
    stats.l1_accesses = machine_stats.l1_accesses
    stats.l1_hits = machine_stats.l1_hits
    stats.llc_accesses = machine_stats.llc_accesses
    stats.llc_hits = machine_stats.llc_hits
    stats.dram_accesses = machine_stats.dram_accesses
    stats.dram_row_hits = machine_stats.dram_row_hits
    if telemetry is not None:
        spatial = machine.collect_spatial()
        if __debug__:
            # Invariant sweep: the spatial accumulators must reconcile with
            # the aggregate counters (l1 hits + misses == accesses, per-MC
            # requests sum to LLC misses, ...).  Always on in debug runs.
            violations = spatial.reconcile(stats)
            assert not violations, (
                "telemetry reconciliation failed: " + "; ".join(violations)
            )
        telemetry.manifest = build_manifest(
            config,
            seed=seed,
            workload=workload.name,
            mapping=mapping,
            scale=scale,
            wall_seconds=time.perf_counter() - wall_start,
            phase_seconds=telemetry.phase_seconds(),
            extra={
                "trips": modeled_trips,
                "cme_accuracy": cme_accuracy,
                "compile_cache": _compile_cache_section(
                    compile_cache, cache_counts_before
                ),
                # Cross-reference into the span timeline: a traced run's
                # manifest names the trace its spans belong to.
                **(
                    {"trace_id": telemetry.tracer.context.trace_id}
                    if telemetry.tracer is not None
                    else {}
                ),
                **(
                    {
                        "faults": list(fault_plan.to_specs()),
                        "fault_plan_hash": fault_plan.plan_hash(),
                        "fault_aware": fault_aware,
                    }
                    if fault_plan is not None
                    else {}
                ),
            },
        )
        stats.manifest = telemetry.manifest
    return RunResult(
        stats=stats,
        compiled=compiled,
        inspector_report=report,
        engine=engine,
        moved_fraction=moved,
    )


def run_workloads(
    specs,
    config: SystemConfig,
    scale: float = 1.0,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    **cell_kwargs,
):
    """Run many (workload, mapping) pairs, optionally sharded and cached.

    ``specs`` is a sequence of ``(workload_name, mapping)`` pairs; each
    becomes one :class:`repro.exec.SweepCell`.  With ``workers > 1`` the
    cells fan out over a process pool, and with ``cache_dir`` completed
    cells are memoized on disk -- both paths are certified field-identical
    to a serial loop over :func:`run_workload` by ``tests/exec``.

    Returns the :class:`repro.exec.SweepResult`; per-pair ``RunStats``
    payloads are at ``result.payloads()``.  (Imported lazily: the executor
    sits above the harness in the layering.)
    """
    from repro.exec import SweepCell, run_sweep

    cells = [
        SweepCell(
            workload=name, config=config, mapping=mapping, scale=scale,
            **cell_kwargs,
        )
        for name, mapping in specs
    ]
    return run_sweep(cells, workers=workers, cache_dir=cache_dir)


def _compile_cache_section(cache, before) -> dict:
    """The manifest's ``compile_cache`` entry: this run's traffic delta.

    The cache (and its counters) is usually process-wide, so the manifest
    records only what *this* run contributed -- the counters observed at
    run start are subtracted out.
    """
    if cache is None:
        return {"enabled": False}
    after = cache.counter_snapshot()
    delta = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] - before.get(name, 0)
    }
    totals = {"hits": 0, "misses": 0, "stores": 0}
    for name, count in delta.items():
        outcome = name.rpartition(".")[2]
        key = {"hit": "hits", "miss": "misses", "store": "stores"}.get(outcome)
        if key is not None:
            totals[key] += count
    return {
        "enabled": True,
        "store": str(cache.store.root) if cache.store is not None else None,
        "counters": delta,
        **totals,
    }


def _build_compiler(config, cme_accuracy, set_fraction, seed, compiler_kwargs,
                    telemetry=None, fault_plan=None, fault_aware=True,
                    compile_cache=None):
    return LocationAwareCompiler(
        config,
        cme_accuracy=cme_accuracy,
        iteration_set_fraction=set_fraction,
        seed=seed,
        telemetry=telemetry,
        fault_plan=fault_plan,
        fault_aware=fault_aware,
        compile_cache=compile_cache,
        **compiler_kwargs,
    )


def compare(
    workload: Workload,
    config: SystemConfig,
    optimized: str = "la",
    scale: float = 1.0,
    trips: Optional[int] = None,
    cme_accuracy: float = DEFAULT_CME_ACCURACY,
    observe: bool = False,
    seed: int = 11,
    compiler_kwargs: Optional[dict] = None,
    telemetry: Optional[Telemetry] = None,
    fault_plan=None,
    fault_aware: bool = True,
    compile_cache="auto",
) -> Tuple[Comparison, RunResult, RunResult]:
    """Baseline (default mapping) vs an optimized mapping on one config.

    ``telemetry`` instruments the *optimized* run only: spatial
    accumulators are per-machine, and attaching one hub to both runs
    would interleave their traffic.  Phase timers and the manifest on
    ``opt.stats.manifest`` therefore describe the optimized run.
    """
    base = run_workload(
        workload, config, mapping="default", scale=scale, trips=trips,
        seed=seed, fault_plan=fault_plan, fault_aware=fault_aware,
    )
    opt = run_workload(
        workload,
        config,
        mapping=optimized,
        scale=scale,
        trips=trips,
        cme_accuracy=cme_accuracy,
        observe=observe,
        seed=seed,
        compiler_kwargs=compiler_kwargs,
        telemetry=telemetry,
        fault_plan=fault_plan,
        fault_aware=fault_aware,
        compile_cache=compile_cache,
    )
    comparison = Comparison(
        name=workload.name, baseline=base.stats, optimized=opt.stats
    )
    return comparison, base, opt
