"""Plain-text rendering of experiment results (the "figures" as tables).

The paper's figures are bar charts; a reproduction harness regenerates the
underlying numbers.  These helpers print them as aligned tables so the
bench targets produce readable, diffable output.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render rows as a fixed-width table."""
    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> None:
    print()
    print(format_table(headers, rows, title=title, float_fmt=float_fmt))
    print()


def app_metric_table(
    title: str,
    per_app: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str],
    summary_row: Optional[Mapping[str, float]] = None,
) -> str:
    """Table with one row per application and one column per metric."""
    headers = ["benchmark"] + list(metrics)
    rows = [
        [app] + [per_app[app].get(metric, float("nan")) for metric in metrics]
        for app in per_app
    ]
    if summary_row is not None:
        rows.append(
            ["GEOMEAN"] + [summary_row.get(m, float("nan")) for m in metrics]
        )
    return format_table(headers, rows, title=title)
