"""Plain-text rendering of experiment results (the "figures" as tables).

The paper's figures are bar charts; a reproduction harness regenerates the
underlying numbers.  These helpers print them as aligned tables so the
bench targets produce readable, diffable output.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render rows as a fixed-width table."""
    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> None:
    print()
    print(format_table(headers, rows, title=title, float_fmt=float_fmt))
    print()


def app_metric_table(
    title: str,
    per_app: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str],
    summary_row: Optional[Mapping[str, float]] = None,
    sort_rows: bool = False,
) -> str:
    """Table with one row per application and one column per metric.

    ``sort_rows=True`` orders rows by application name instead of by dict
    insertion order.  Results assembled from a parallel sweep arrive in
    completion order, which varies run to run; sorted rows make the
    rendered table (and its golden-snapshot hash) order-independent.
    The figure tables keep insertion order: the paper lists applications
    in Figure 7/8 order, not alphabetically.
    """
    headers = ["benchmark"] + list(metrics)
    apps = sorted(per_app) if sort_rows else list(per_app)
    rows = [
        [app] + [per_app[app].get(metric, float("nan")) for metric in metrics]
        for app in apps
    ]
    if summary_row is not None:
        rows.append(
            ["GEOMEAN"] + [summary_row.get(m, float("nan")) for m in metrics]
        )
    return format_table(headers, rows, title=title)


def geomean_summary(
    per_app: Mapping[str, Mapping[str, float]],
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Per-metric geomean over applications, reduced in sorted-key order.

    Floating-point reduction is order-sensitive, so the value lists are
    always collected over ``sorted(per_app)``: two tables built from the
    same results -- whatever order a parallel sweep delivered them in --
    summarize bit-identically.
    """
    from repro.sim.stats import geomean

    if metrics is None:
        names = sorted({m for row in per_app.values() for m in row})
    else:
        names = list(metrics)
    return {
        metric: geomean(
            [
                per_app[app][metric]
                for app in sorted(per_app)
                if metric in per_app[app]
            ]
        )
        for metric in names
    }
