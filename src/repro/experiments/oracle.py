"""Oracle placement analysis: how much can ANY mapping save?

Given the *observed* per-iteration-set traffic of a run (which banks served
its hits, which MCs served its misses), the flit-hop cost of running that
set on core ``c`` is a simple weighted sum of Manhattan distances.  The
oracle assigns every set to its argmin core independently -- ignoring load
balance, so it upper-bounds what location-aware mapping can achieve on this
workload/machine.  EXPERIMENTS.md uses this bound to contextualize the gap
between our measured reductions and the paper's.

Cost model per set on core ``c`` (flit-hops):

* each LLC hit:   ``d(c, bank) * (request_flits + data_flits)``
  (request out, data back -- both scale with distance),
* each LLC miss:  ``d(c, mc_node) * data_flits``
  (only the MC->core fill leg depends on the core's position; the
  core->bank and bank->MC request legs are address-determined).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.noc.packet import CONTROL_FLITS, flits_for_payload
from repro.noc.topology import Mesh2D
from repro.sim.engine import ExecutionEngine, ObservedSet


@dataclass
class OracleAnalysis:
    """Traffic costs of three placements over one observation table."""

    baseline_cost: float
    mapped_cost: float
    oracle_cost: float
    sets: int

    @property
    def mapped_reduction(self) -> float:
        """% traffic-cost reduction the actual mapping achieved."""
        if self.baseline_cost == 0:
            return 0.0
        return 100.0 * (self.baseline_cost - self.mapped_cost) / self.baseline_cost

    @property
    def oracle_reduction(self) -> float:
        """% reduction of the per-set-optimal (unbalanced) placement."""
        if self.baseline_cost == 0:
            return 0.0
        return 100.0 * (self.baseline_cost - self.oracle_cost) / self.baseline_cost

    @property
    def capture_ratio(self) -> float:
        """Fraction of the oracle's headroom the mapping captured."""
        headroom = self.baseline_cost - self.oracle_cost
        if headroom <= 0:
            return 1.0
        return (self.baseline_cost - self.mapped_cost) / headroom


def set_traffic_cost(
    core: int,
    observed: ObservedSet,
    mesh: Mesh2D,
    line_bytes: int = 64,
) -> float:
    """Flit-hop cost of one observed iteration set if run on ``core``."""
    data_flits = flits_for_payload(line_bytes)
    cost = 0.0
    for bank, count in enumerate(observed.hit_bank):
        if count:
            distance = mesh.node_distance(core, int(bank))
            cost += float(count) * distance * (CONTROL_FLITS + data_flits)
    for mc, count in enumerate(observed.miss_mc):
        if count:
            distance = mesh.node_distance(core, mesh.mc_node(int(mc)))
            cost += float(count) * distance * data_flits
    return cost


def analyze_schedule(
    engine: ExecutionEngine,
    label: str,
    schedules: Dict[int, Dict[int, int]],
    baseline_schedules: Optional[Dict[int, Dict[int, int]]] = None,
    line_bytes: int = 64,
) -> OracleAnalysis:
    """Compare a schedule's traffic cost against baseline and oracle.

    ``label`` selects the engine observation table to cost against (the
    traffic actually generated).  ``baseline_schedules`` defaults to
    round-robin by set id.
    """
    mesh = engine.machine.mesh
    num_cores = mesh.num_nodes
    table = engine.observations.get(label, {})
    baseline_cost = mapped_cost = oracle_cost = 0.0
    sets = 0
    for (nest, set_id), observed in table.items():
        costs = [
            set_traffic_cost(core, observed, mesh, line_bytes)
            for core in range(num_cores)
        ]
        mapped_core = schedules.get(nest, {}).get(set_id)
        if mapped_core is None:
            continue
        if baseline_schedules is not None:
            base_core = baseline_schedules[nest][set_id]
        else:
            base_core = set_id % num_cores
        baseline_cost += costs[base_core]
        mapped_cost += costs[mapped_core]
        oracle_cost += min(costs)
        sets += 1
    return OracleAnalysis(
        baseline_cost=baseline_cost,
        mapped_cost=mapped_cost,
        oracle_cost=oracle_cost,
        sets=sets,
    )
