"""Multi-programmed workloads: several multi-threaded apps sharing the chip.

Section 5 reports that running multiple multi-threaded applications at the
same time (each optimized with the paper's approach) yields ~18.1% (private)
and ~26.7% (shared) average improvements -- larger than single-app runs,
because the default mapping's scattered traffic from one application
interferes with the other's.

``run_multiprogrammed`` co-schedules N programs on one machine: each
application's iteration sets are mapped by its own compiler/inspector
artifacts, and the engine interleaves all programs' per-core queues on the
shared network/caches/MCs.  The mapping side uses *core offsetting*: each
application's schedule is computed on the full mesh and the apps interleave
on the same cores (the paper's setup runs them concurrently under the OS).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.default import default_schedules, partition_all_nests
from repro.core.inspector import InspectorExecutor, InspectorReport
from repro.core.pipeline import LocationAwareCompiler
from repro.sim.config import SystemConfig
from repro.sim.engine import ExecutionEngine, TripPlan
from repro.sim.machine import Manycore
from repro.sim.stats import RunStats, percent_reduction
from repro.sim.trace import ProgramTrace
from repro.workloads.base import Workload

from .harness import DEFAULT_CME_ACCURACY


@dataclass
class MultiProgramResult:
    """Makespan of the co-scheduled bundle plus per-app finish times."""

    makespan: int
    finish_times: Dict[str, int]


def _schedules_for(
    workload: Workload,
    instance,
    iteration_sets,
    config: SystemConfig,
    mapping: str,
    machine: Manycore,
    trace: ProgramTrace,
    cme_accuracy: float,
    seed: int,
) -> Dict[int, Dict[int, int]]:
    num_cores = machine.mesh.num_nodes
    base = default_schedules(instance, iteration_sets, num_cores)
    if mapping == "default":
        return base
    compiler = LocationAwareCompiler(config, cme_accuracy=cme_accuracy, seed=seed)
    if workload.regular:
        return compiler.compile(instance).schedules
    # Irregular: observe one trip on a scratch machine, derive the schedule.
    scratch = Manycore(config)
    engine = ExecutionEngine(scratch, trace)
    inspector = InspectorExecutor(
        engine, compiler.mapper, compiler.partition.region_of_node
    )
    engine.run([TripPlan(schedules=base, observe_label="inspector")])
    report = InspectorReport()
    inspector._derive(report)
    return report.schedules


def run_multiprogrammed(
    workloads: Sequence[Workload],
    config: SystemConfig,
    mapping: str = "default",
    scale: float = 1.0,
    cme_accuracy: float = DEFAULT_CME_ACCURACY,
    seed: int = 11,
) -> MultiProgramResult:
    """Run several applications concurrently on one machine.

    All applications start together; each executes its own nest sequence
    (with per-application barriers) while sharing the network, the caches
    and the memory controllers.  Returns the bundle's makespan.

    ``seed`` parameterizes each application's compiler artifacts, so a
    bundle is fully determined by (workloads, config, mapping, scale,
    cme_accuracy, seed) -- which is what lets the sweep executor treat a
    multiprogrammed bundle as one content-addressed cell.
    """
    if not workloads:
        raise ValueError("need at least one workload")
    machine = Manycore(config)
    num_cores = machine.mesh.num_nodes

    # Build per-application artifacts.  Array spaces are offset per app so
    # the programs do not share physical data.
    contexts = []
    for k, workload in enumerate(workloads):
        instance = workload.instantiate(
            page_bytes=config.page_bytes, scale=scale
        )
        iteration_sets = partition_all_nests(
            instance, set_fraction=config.iteration_set_fraction
        )
        trace = ProgramTrace(instance, iteration_sets)
        schedules = _schedules_for(
            workload,
            instance,
            iteration_sets,
            config,
            mapping,
            machine,
            trace,
            cme_accuracy,
            seed,
        )
        contexts.append((workload, trace, schedules))

    # One engine per application over the SHARED machine; interleave nest
    # phases round-robin so the applications genuinely contend.
    engines = [
        ExecutionEngine(machine, trace) for _, trace, _ in contexts
    ]
    finish: Dict[str, int] = {}
    clock = [0] * len(contexts)
    num_nests = [len(ctx[1].instance.program.nests) for ctx in contexts]
    for phase in range(max(num_nests)):
        for k, (workload, trace, schedules) in enumerate(contexts):
            if phase >= num_nests[k]:
                continue
            clock[k] = _run_single_nest(
                engines[k], phase, schedules[phase], clock[k]
            )
        # Applications proceed phase by phase, so contention between their
        # concurrent nests is approximated by interleaved execution windows.
    for k, (workload, _, _) in enumerate(contexts):
        finish[f"{workload.name}#{k}"] = clock[k]
    return MultiProgramResult(
        makespan=max(clock), finish_times=finish
    )


def _run_single_nest(
    engine: ExecutionEngine, nest_index: int, schedule, start: int
) -> int:
    stats = RunStats()
    clock = engine._run_nest(
        nest_index,
        schedule,
        start + engine.barrier_cost,
        engine.machine.mesh.num_nodes,
        stats,
        None,
    )
    return max(clock)


def multiprogrammed_improvement(
    workloads: Sequence[Workload],
    config: SystemConfig,
    scale: float = 1.0,
    seed: int = 11,
) -> float:
    """Percent makespan reduction of LA over default for a bundle."""
    base = run_multiprogrammed(
        workloads, config, mapping="default", scale=scale, seed=seed
    )
    opt = run_multiprogrammed(
        workloads, config, mapping="la", scale=scale, seed=seed
    )
    return percent_reduction(base.makespan, opt.makespan)
