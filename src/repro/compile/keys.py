"""Content-addressed key material for compile-side artifacts.

Every memoized artifact is addressed by a sha256 over canonical JSON of a
*material* dict built here.  The material must cover everything the
artifact is a function of -- and nothing volatile -- so keys are stable
across processes, runs, and machines:

* **estimates** -- program instance content hash, nest index, iteration
  sets, LLC geometry, sampling parameters, accuracy, seed.
* **affinity** -- the estimates material plus the architecture view
  (address layout / data distribution, including fault degradation, and
  the region partition with its MC placement) and the LLC organization.
* **tables** -- the region partition, MAC mode, CAC self-weight, LLC
  organization, router delay, and the fault plan hash (``None`` for the
  pristine tables, which is how the fault-aware arm's oblivious mapper
  shares entries with plain fault-blind compiles).

The pipeline code version is folded into every key, so artifacts from an
older pipeline can never be replayed as current ones.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.obs.manifest import _normalize

COMPILE_SCHEMA_VERSION = "repro.compile/1"
"""Envelope namespace of the compile-side cache.  Bump on any payload
layout change: it is folded into every key AND stamped on every on-disk
entry, so old entries become unreadable misses, never misparsed data."""


def material_digest(kind: str, material: Dict[str, Any]) -> str:
    """The content-addressed key of one artifact."""
    from repro.core.pipeline import PIPELINE_VERSION

    envelope = {
        "schema": COMPILE_SCHEMA_VERSION,
        "pipeline": PIPELINE_VERSION,
        "kind": kind,
        "material": material,
    }
    payload = json.dumps(envelope, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def instance_digest(instance: Any) -> str:
    """Content hash of one program instance.

    Covers the program structure (nests, references, arrays), the bound
    parameters, the address-space layout, and the *contents* of runtime
    index arrays -- generated programs (e.g. the fuzzer's) can share a
    name while differing in body, so the name alone is never trusted.
    """
    program = instance.program
    space = instance.space
    runtime_digests: Dict[str, str] = {}
    for name in sorted(instance.runtime):
        array = np.ascontiguousarray(instance.runtime[name])
        hasher = hashlib.sha256()
        hasher.update(str(array.dtype).encode("utf-8"))
        hasher.update(repr(array.shape).encode("utf-8"))
        hasher.update(array.tobytes())
        runtime_digests[name] = hasher.hexdigest()
    material = {
        "name": program.name,
        "program_seed": program.seed,
        "timing_loop_trips": program.timing_loop_trips,
        "params": _normalize(dict(instance.params)),
        # LoopNest / Reference / ArrayDecl / AffineExpr are all frozen
        # dataclasses, which _normalize renders field by field.  (The
        # Program itself is NOT normalized: its index_array_builders are
        # functions, whose repr is process-dependent -- their *output* is
        # hashed via the runtime arrays instead.)
        "nests": _normalize(list(program.nests)),
        "space": {
            "page_bytes": space.page_bytes,
            "base_vaddr": space.base_vaddr,
            "bases": _normalize(dict(space._bases)),
            "shapes": _normalize(dict(space._shapes)),
        },
        "runtime": runtime_digests,
    }
    payload = json.dumps(material, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def partition_material(partition: Any) -> Dict[str, Any]:
    """Key material of a region partition (mesh + MC placement + grid)."""
    mesh = partition.mesh
    return {
        "mesh": {
            "width": mesh.width,
            "height": mesh.height,
            "mc_placement": _normalize(mesh.mc_placement),
            "mcs": _normalize(list(mesh.mcs)),
        },
        "region_w": partition.region_w,
        "region_h": partition.region_h,
        "grid_w": partition.grid_w,
        "grid_h": partition.grid_h,
    }


def distribution_material(distribution: Any) -> Any:
    """Key material of a data distribution (address layout + targets).

    Degraded distributions expose :meth:`cache_material`; pristine ones
    are plain frozen dataclasses that `_normalize` renders directly.
    """
    cache_material = getattr(distribution, "cache_material", None)
    if cache_material is not None:
        return cache_material()
    return _normalize(distribution)


def estimates_material(
    instance_hash: str,
    nest_index: int,
    iteration_sets: Sequence[Any],
    estimator: Any,
) -> Dict[str, Any]:
    """Key material of one nest's CME estimates."""
    return {
        "instance": instance_hash,
        "nest": nest_index,
        "sets": _normalize(list(iteration_sets)),
        "llc_size_bytes": estimator.llc_size_bytes,
        "llc_assoc": estimator.llc_assoc,
        "line_bytes": estimator.line_bytes,
        "accuracy": estimator.accuracy,
        "sample_iterations": estimator.sample_iterations,
        "seed": estimator.seed,
    }


def affinity_material(
    estimates: Dict[str, Any],
    view: Any,
    organization: Any,
) -> Dict[str, Any]:
    """Key material of one nest's MAI/CAI vectors under one view."""
    return {
        "estimates": estimates,
        "partition": partition_material(view.partition),
        "distribution": distribution_material(view.distribution),
        "organization": _normalize(organization),
    }


def tables_material(
    partition: Any,
    organization: Any,
    mac_mode: Any,
    cac_self_weight: float,
    fault_plan_hash: Optional[str],
    router_delay: int,
) -> Dict[str, Any]:
    """Key material of the MAC/CAC proximity tables.

    ``fault_plan_hash`` is ``None`` for pristine tables; the fault-aware
    compile's oblivious arm therefore shares the exact entry a plain
    fault-blind compile writes.
    """
    return {
        "partition": partition_material(partition),
        "organization": _normalize(organization),
        "mac_mode": _normalize(mac_mode),
        "cac_self_weight": cac_self_weight,
        "fault_plan": fault_plan_hash,
        "router_delay": router_delay,
    }
