"""Content-addressed compile-side memoization (see :mod:`.cache`)."""

from .artifacts import (
    decode_affinities,
    decode_estimates,
    decode_tables,
    encode_affinities,
    encode_estimates,
    encode_tables,
)
from .cache import (
    DEFAULT_MEMORY_ENTRIES,
    CompileCache,
    configure_compile_cache,
    get_compile_cache,
    reset_compile_cache,
)
from .keys import (
    COMPILE_SCHEMA_VERSION,
    affinity_material,
    distribution_material,
    estimates_material,
    instance_digest,
    material_digest,
    partition_material,
    tables_material,
)

__all__ = [
    "COMPILE_SCHEMA_VERSION",
    "DEFAULT_MEMORY_ENTRIES",
    "CompileCache",
    "affinity_material",
    "configure_compile_cache",
    "decode_affinities",
    "decode_estimates",
    "decode_tables",
    "distribution_material",
    "encode_affinities",
    "encode_estimates",
    "encode_tables",
    "estimates_material",
    "get_compile_cache",
    "instance_digest",
    "material_digest",
    "partition_material",
    "reset_compile_cache",
    "tables_material",
]
