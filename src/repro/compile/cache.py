"""Content-addressed, cross-run memoization of compile-side artifacts.

:class:`CompileCache` layers an in-process LRU over the PR-5 on-disk
:class:`~repro.exec.cache.ResultCache` (same atomic-write + quarantine
discipline, its own ``repro.compile/1`` envelope namespace).  It stores
JSON payloads, never domain objects, and :meth:`get_or_build` pushes even
freshly built payloads through a JSON round-trip before returning them --
so the cached and uncached compile paths consume literally identical
data, which is what makes the cache bit-transparent.

Memoized artifact kinds (key material in :mod:`repro.compile.keys`,
codecs in :mod:`repro.compile.artifacts`):

* ``estimates`` -- per-nest CME classified accesses;
* ``affinity``  -- per-nest MAI/CAI/alpha vectors under one view;
* ``tables``    -- MAC/CAC proximity tables (pristine or degraded).

A process-global instance (:func:`get_compile_cache`) is shared by every
compile in the process; forked sweep workers inherit its warm LRU.  The
sweep executor points its on-disk store at the cell's
``compile_cache_dir`` so artifacts persist across runs and processes.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.exec.cache import ResultCache

from .keys import COMPILE_SCHEMA_VERSION, material_digest

DEFAULT_MEMORY_ENTRIES = 256
"""In-process LRU capacity (payload count, all artifact kinds pooled)."""

_OUTCOME_TOTALS = {"hit": "hits", "miss": "misses", "store": "stores"}


class CompileCache:
    """Two-level (LRU + optional on-disk) compile artifact cache."""

    def __init__(
        self,
        store_dir: "Optional[str | Path]" = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ):
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.store: Optional[ResultCache] = (
            ResultCache(store_dir, schema=COMPILE_SCHEMA_VERSION)
            if store_dir is not None
            else None
        )
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        # Flat "<kind>.<outcome>" counters (e.g. "estimates.hit"); the
        # run manifest and sweep summaries aggregate them via totals().
        self.counters: Dict[str, int] = {}

    # -- lookup ---------------------------------------------------------
    def key_for(self, kind: str, material: Dict[str, Any]) -> str:
        return material_digest(kind, material)

    def get_or_build(
        self,
        kind: str,
        material: Dict[str, Any],
        build: Callable[[], Any],
        telemetry: Any = None,
    ) -> Any:
        """The memoized JSON payload for (kind, material).

        On a miss, ``build()`` runs once and its result is JSON-round-
        tripped, remembered in the LRU, and (when a store is attached)
        persisted.  Returned payloads are shared across hits -- callers
        must treat them as immutable and decode into fresh domain
        objects.
        """
        key = self.key_for(kind, material)
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self._count(kind, "hit", telemetry)
            return cached
        if self.store is not None:
            entry = self.store.get(key)
            if entry is not None:
                payload = entry["data"]
                self._remember(key, payload)
                self._count(kind, "hit", telemetry)
                return payload
        built = json.loads(json.dumps(build(), sort_keys=True))
        self._count(kind, "miss", telemetry)
        if self.store is not None:
            # ResultCache envelopes require a dict payload; "data" wraps
            # list-shaped artifacts (affinity vectors) uniformly.
            self.store.put(key, {"data": built})
            self._count(kind, "store", telemetry)
        self._remember(key, built)
        return built

    def _remember(self, key: str, payload: Any) -> None:
        memory = self._memory
        if key in memory:
            memory.move_to_end(key)
            memory[key] = payload
            return
        memory[key] = payload
        while len(memory) > self.memory_entries:
            memory.popitem(last=False)

    def _count(self, kind: str, outcome: str, telemetry: Any = None) -> None:
        name = f"{kind}.{outcome}"
        self.counters[name] = self.counters.get(name, 0) + 1
        if telemetry is not None:
            telemetry.count(f"compile_cache.{name}")

    # -- accounting -----------------------------------------------------
    def counter_snapshot(self) -> Dict[str, int]:
        """Sorted copy of the per-kind counters (delta arithmetic)."""
        return dict(sorted(self.counters.items()))

    def totals(self) -> Dict[str, int]:
        """hits / misses / stores summed over artifact kinds."""
        out = {"hits": 0, "misses": 0, "stores": 0}
        for name, count in self.counters.items():
            outcome = name.rpartition(".")[2]
            total_key = _OUTCOME_TOTALS.get(outcome)
            if total_key is not None:
                out[total_key] += count
        return out

    @property
    def hit_rate(self) -> float:
        totals = self.totals()
        attempts = totals["hits"] + totals["misses"]
        return totals["hits"] / attempts if attempts else 0.0

    def stats(self) -> Dict[str, Any]:
        """Inventory + traffic, the ``repro cache stats`` shape."""
        out: Dict[str, Any] = {
            "schema": COMPILE_SCHEMA_VERSION,
            "memory_entries": len(self._memory),
            "memory_capacity": self.memory_entries,
            "counters": self.counter_snapshot(),
            **self.totals(),
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.store is not None:
            out["store"] = self.store.stats()
        return out

    # -- maintenance ----------------------------------------------------
    def clear_memory(self) -> int:
        """Drop the in-process LRU (disk entries survive)."""
        dropped = len(self._memory)
        self._memory.clear()
        return dropped

    def __repr__(self) -> str:
        root = str(self.store.root) if self.store is not None else None
        return (
            f"CompileCache(store={root!r}, "
            f"memory={len(self._memory)}/{self.memory_entries})"
        )


# ----------------------------------------------------------------------
# Process-global instance (shared by every compile in this process;
# forked sweep workers inherit the warm LRU).
# ----------------------------------------------------------------------
_PROCESS_CACHE: Optional[CompileCache] = None


def get_compile_cache() -> CompileCache:
    """The process-wide compile cache (memory-only until configured)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CompileCache()
    return _PROCESS_CACHE


def configure_compile_cache(store_dir: "str | Path") -> CompileCache:
    """Attach (or retarget) the process cache's on-disk store."""
    cache = get_compile_cache()
    root = Path(store_dir)
    if cache.store is None or Path(cache.store.root) != root:
        cache.store = ResultCache(root, schema=COMPILE_SCHEMA_VERSION)
    return cache


def reset_compile_cache() -> None:
    """Forget the process cache entirely (tests and benchmarks)."""
    global _PROCESS_CACHE
    _PROCESS_CACHE = None
