"""Codecs between compile-side domain objects and cached JSON payloads.

Every codec pair is exact: ``decode(json_round_trip(encode(x)))``
reconstructs ``x`` bit for bit.  Python's JSON writer round-trips finite
doubles exactly and renders ``inf`` as ``Infinity`` (which the reader
accepts), so affinity vectors and degraded distance tables -- including
their ``inf`` entries for unreachable targets -- survive unchanged.
This is what makes the cache transparent: a compile fed decoded payloads
produces byte-identical schedules, stats, and event streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.cme.equations import ClassifiedAccess, SetEstimate
from repro.core.mapping import ProximityTables, SetAffinity


# -- CME estimates ------------------------------------------------------
def encode_estimates(estimates: Dict[int, SetEstimate]) -> Dict[str, Any]:
    """``{set_id: [[vaddr, is_write, llc_hit], ...]}`` (JSON-ready)."""
    return {
        str(set_id): [
            [a.vaddr, a.is_write, a.llc_hit] for a in estimate.accesses
        ]
        for set_id, estimate in sorted(estimates.items())
    }


def decode_estimates(payload: Mapping[str, Any]) -> Dict[int, SetEstimate]:
    out: Dict[int, SetEstimate] = {}
    for set_id in sorted(int(key) for key in payload):
        rows = payload[str(set_id)]
        out[set_id] = SetEstimate(
            set_id,
            [
                ClassifiedAccess(int(vaddr), bool(is_write), bool(hit))
                for vaddr, is_write, hit in rows
            ],
        )
    return out


# -- affinity vectors ---------------------------------------------------
def encode_affinities(affinities: List[SetAffinity]) -> List[Dict[str, Any]]:
    return [
        {
            "set_id": a.set_id,
            "mai": [float(x) for x in a.mai],
            "cai": (
                [float(x) for x in a.cai] if a.cai is not None else None
            ),
            "alpha": a.alpha,
            "iterations": a.iterations,
        }
        for a in affinities
    ]


def decode_affinities(payload: List[Mapping[str, Any]]) -> List[SetAffinity]:
    return [
        SetAffinity(
            set_id=int(row["set_id"]),
            mai=np.asarray(row["mai"], dtype=float),
            cai=(
                np.asarray(row["cai"], dtype=float)
                if row["cai"] is not None
                else None
            ),
            alpha=float(row["alpha"]),
            iterations=int(row["iterations"]),
        )
        for row in payload
    ]


# -- proximity tables ---------------------------------------------------
def _encode_vector_map(table: Mapping[int, Any]) -> Dict[str, List[float]]:
    return {
        str(key): [float(x) for x in vec] for key, vec in sorted(table.items())
    }


def _decode_vector_map(payload: Mapping[str, Any]) -> Dict[int, np.ndarray]:
    return {
        int(key): np.asarray(vec, dtype=float)
        for key, vec in payload.items()
    }


def _encode_matrix(matrix: Optional[np.ndarray]) -> Optional[List[Any]]:
    return matrix.tolist() if matrix is not None else None


def _decode_matrix(payload: Optional[List[Any]]) -> Optional[np.ndarray]:
    return np.asarray(payload, dtype=float) if payload is not None else None


def encode_tables(tables: ProximityTables) -> Dict[str, Any]:
    return {
        "macs": _encode_vector_map(tables.macs),
        "cacs": _encode_vector_map(tables.cacs),
        "capacity": _encode_matrix(tables.capacity),
        "mem_dist": _encode_matrix(tables.mem_dist),
        "llc_dist": _encode_matrix(tables.llc_dist),
    }


def decode_tables(payload: Mapping[str, Any]) -> ProximityTables:
    return ProximityTables(
        macs=_decode_vector_map(payload["macs"]),
        cacs=_decode_vector_map(payload["cacs"]),
        capacity=_decode_matrix(payload["capacity"]),
        mem_dist=_decode_matrix(payload["mem_dist"]),
        llc_dist=_decode_matrix(payload["llc_dist"]),
    )
