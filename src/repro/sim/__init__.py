"""Manycore simulator: configuration, machine, trace generation, engine."""

from .config import DEFAULT_CONFIG, NetworkModel, SystemConfig, sensitivity_variants
from .engine import ExecutionEngine, ObservedSet, TripPlan
from .machine import AccessTiming, Manycore
from .stats import Comparison, RunStats, geomean, mean, percent_reduction
from .trace import ProgramTrace, SetTrace, binding_arrays, reference_addresses

__all__ = [
    "DEFAULT_CONFIG",
    "NetworkModel",
    "SystemConfig",
    "sensitivity_variants",
    "ExecutionEngine",
    "ObservedSet",
    "TripPlan",
    "AccessTiming",
    "Manycore",
    "Comparison",
    "RunStats",
    "geomean",
    "mean",
    "percent_reduction",
    "ProgramTrace",
    "SetTrace",
    "binding_arrays",
    "reference_addresses",
]
