"""System configuration (Table 4) and machine construction.

``SystemConfig`` holds every knob the evaluation varies: mesh size
(6x6 default, 8x8 in Figure 9), LLC capacity (512 KB/core default, 1 MB in
Figure 9), page size (2 KB default, 8 KB in Figure 9), MC placement
(corners default, edge middles in Figure 9), DRAM generation (DDR3 default,
DDR4 in Figure 12), data distribution granularities (Figure 11), region
size (Figure 10a/b) and iteration-set size (Figure 10c/d).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.hierarchy import CacheConfig
from repro.cache.snuca import LLCOrganization
from repro.memory.address import AddressLayout
from repro.memory.distribution import (
    DataDistribution,
    Granularity,
)
from repro.memory.dram import DDR3_1333, DDR4_2400, DramTimings
from repro.noc.topology import MCPlacement, Mesh2D


class NetworkModel(enum.Enum):
    WORMHOLE = "wormhole"    # link-reservation model (reference)
    ANALYTIC = "analytic"    # windowed-utilization model (fast sweeps)
    IDEAL = "ideal"          # zero-latency network (Figure 2 upper bound)


@dataclass(frozen=True)
class SystemConfig:
    """One manycore configuration; defaults reproduce Table 4."""

    # Mesh / regions
    mesh_width: int = 6
    mesh_height: int = 6
    region_w: int = 2
    region_h: int = 2
    mc_placement: MCPlacement = MCPlacement.CORNERS

    # Caches.  Capacities are the paper's Table 4 values scaled down ~64x
    # (L1 16 KB -> 2 KB, L2 512 KB/core -> 8 KB/core): our workload
    # footprints are orders of magnitude smaller than the paper's
    # 451 MB-1.4 GB inputs, and what the paper's behaviour depends on is the
    # footprint/LLC *ratio* (steady-state LLC miss rates of 13-37%), not the
    # absolute capacity.  What a core itself touches must overflow its
    # private bank, and the aggregate footprint must overflow the shared
    # LLC, for the paper's off-chip traffic to exist at all.  Geometry
    # (associativity, line sizes, bank count) is unscaled.
    l1_size_bytes: int = 2 * 1024
    l1_assoc: int = 8
    l1_line_bytes: int = 32
    l2_size_bytes: int = 16 * 1024
    l2_assoc: int = 16
    l2_line_bytes: int = 64
    llc_organization: LLCOrganization = LLCOrganization.SHARED

    # Latencies (cycles @ 1 GHz)
    l1_latency: int = 2
    llc_latency: int = 8
    router_delay: int = 3

    # Memory
    page_bytes: int = 2048
    dram: DramTimings = DDR3_1333
    mc_buffer_entries: int = 250
    # Data distribution.  MCs: page-granularity round robin (Table 4).
    # LLC banks: the paper's Table 4 lists cache-line granularity; we default
    # to page granularity because the worked examples of Figure 6 (arrays
    # homed in regions) presuppose page/region-level bank homing -- with pure
    # line interleaving a streaming set's hits are spread over every bank and
    # *no* computation placement can shorten them.  Figure 11's benchmark
    # sweeps all four (cache-bank, memory-bank) combinations, line
    # interleaving included, so the stated default is still evaluated.
    mc_granularity: Granularity = Granularity.PAGE
    bank_granularity: Granularity = Granularity.PAGE

    # Network
    network_model: NetworkModel = NetworkModel.ANALYTIC

    # Scheduling
    iteration_set_fraction: float = 0.0025

    # Execution model: fraction of a memory stall hidden by MLP/OoO overlap.
    stall_overlap: float = 0.7

    # Engine implementation: "fast" batches L1-hit detection through numpy
    # (behaviour-identical to the scalar model, enforced by the differential
    # suite in tests/sim/test_engine_equivalence.py); "reference" forces the
    # original per-access scalar walk.
    engine_mode: str = "fast"

    def __post_init__(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got "
                f"{self.mesh_width}x{self.mesh_height}"
            )
        if self.region_w < 1 or self.region_h < 1:
            raise ValueError(
                f"region dimensions must be positive, got "
                f"{self.region_w}x{self.region_h}"
            )
        if self.region_w > self.mesh_width or self.region_h > self.mesh_height:
            raise ValueError(
                f"{self.region_w}x{self.region_h} regions do not fit on a "
                f"{self.mesh_width}x{self.mesh_height} mesh; shrink the "
                "region or grow the mesh"
            )
        if self.mesh_width % self.region_w or self.mesh_height % self.region_h:
            raise ValueError(
                f"mesh {self.mesh_width}x{self.mesh_height} is not divisible "
                f"by the {self.region_w}x{self.region_h} region size; ragged "
                "edge regions would skew the load balancer -- pick a region "
                "size that tiles the mesh (or build a RegionPartition "
                "directly to study ragged grids)"
            )
        for name, value in (
            ("l1_latency", self.l1_latency),
            ("llc_latency", self.llc_latency),
            ("router_delay", self.router_delay),
        ):
            if value < 1:
                raise ValueError(
                    f"{name} must be at least 1 cycle, got {value}"
                )
        for name, value in (
            ("l1_line_bytes", self.l1_line_bytes),
            ("l2_line_bytes", self.l2_line_bytes),
            ("page_bytes", self.page_bytes),
        ):
            if value < 1 or value & (value - 1):
                raise ValueError(
                    f"{name} must be a power of two, got {value} (the "
                    "address layout slices line/page bits)"
                )
        if self.page_bytes < self.l2_line_bytes:
            raise ValueError(
                f"page_bytes ({self.page_bytes}) must be at least one LLC "
                f"line ({self.l2_line_bytes}); a line cannot straddle pages"
            )
        for name, size, assoc, line in (
            ("l1", self.l1_size_bytes, self.l1_assoc, self.l1_line_bytes),
            ("l2", self.l2_size_bytes, self.l2_assoc, self.l2_line_bytes),
        ):
            if assoc < 1:
                raise ValueError(f"{name}_assoc must be positive, got {assoc}")
            if size < assoc * line:
                raise ValueError(
                    f"{name}_size_bytes ({size}) cannot hold a single "
                    f"{assoc}-way set of {line}-byte lines "
                    f"(needs >= {assoc * line})"
                )
        if self.mc_buffer_entries < 1:
            raise ValueError(
                f"mc_buffer_entries must be at least 1, got "
                f"{self.mc_buffer_entries}"
            )
        if not 0.0 <= self.stall_overlap < 1.0:
            raise ValueError("stall_overlap must be in [0, 1)")
        if not 0.0 < self.iteration_set_fraction <= 1.0:
            raise ValueError("iteration_set_fraction must be in (0, 1]")
        if self.engine_mode not in ("fast", "reference"):
            raise ValueError("engine_mode must be 'fast' or 'reference'")

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def num_mcs(self) -> int:
        return 4

    def layout(self) -> AddressLayout:
        return AddressLayout(
            line_bytes=self.l2_line_bytes, page_bytes=self.page_bytes
        )

    def build_mesh(self) -> Mesh2D:
        return Mesh2D(
            width=self.mesh_width,
            height=self.mesh_height,
            mc_placement=self.mc_placement,
        )

    def build_distribution(self) -> DataDistribution:
        return DataDistribution(
            num_mcs=self.num_mcs,
            num_llc_banks=self.num_cores,
            layout=self.layout(),
            mc_granularity=self.mc_granularity,
            bank_granularity=self.bank_granularity,
        )

    def l1_config(self) -> CacheConfig:
        return CacheConfig(self.l1_size_bytes, self.l1_assoc, self.l1_line_bytes)

    def l2_config(self) -> CacheConfig:
        return CacheConfig(self.l2_size_bytes, self.l2_assoc, self.l2_line_bytes)

    # ------------------------------------------------------------------
    def with_updates(self, **changes) -> "SystemConfig":
        """A copy with some fields replaced (sensitivity studies)."""
        return dataclasses.replace(self, **changes)

    def private_llc(self) -> "SystemConfig":
        return self.with_updates(llc_organization=LLCOrganization.PRIVATE)

    def shared_llc(self) -> "SystemConfig":
        return self.with_updates(llc_organization=LLCOrganization.SHARED)

    def ideal_network(self) -> "SystemConfig":
        return self.with_updates(network_model=NetworkModel.IDEAL)

    def with_ddr4(self) -> "SystemConfig":
        return self.with_updates(dram=DDR4_2400)

    def reference_engine(self) -> "SystemConfig":
        """Copy forcing the scalar per-access execution engine."""
        return self.with_updates(engine_mode="reference")

    def fast_engine(self) -> "SystemConfig":
        """Copy selecting the batched fast-path execution engine."""
        return self.with_updates(engine_mode="fast")


DEFAULT_CONFIG = SystemConfig()
"""Table 4 with a shared LLC (the paper's S-NUCA configuration)."""


def sensitivity_variants(base: SystemConfig) -> dict:
    """The Figure 9 variants, keyed by the paper's labels."""
    return {
        "Default Parameters": base,
        "8x8 Network": base.with_updates(mesh_width=8, mesh_height=8),
        # The paper doubles the LLC (512 KB -> 1 MB); scaled: 32 -> 64 KB.
        "1MB/core LLC": base.with_updates(l2_size_bytes=base.l2_size_bytes * 2),
        "Page Size = 8KB": base.with_updates(page_bytes=8192),
        "Different MC Placement": base.with_updates(
            mc_placement=MCPlacement.EDGE_MIDDLES
        ),
    }
