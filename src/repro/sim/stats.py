"""Run statistics and the comparison arithmetic used in the evaluation.

The paper reports two headline quantities per run pair:

* **on-chip network latency reduction** -- we use the average packet latency
  (hop + contention) over all packets a run injects, and
* **execution time reduction** -- last core's finish time.

Both are percentages of the baseline run ("% Reduction" in Figures 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import math
import warnings


@dataclass
class RunStats:
    """Everything measured in one simulated run."""

    execution_cycles: int = 0
    network_packets: int = 0
    network_total_latency: int = 0
    network_total_hops: int = 0
    network_flit_hops: int = 0
    l1_accesses: int = 0
    l1_hits: int = 0
    llc_accesses: int = 0
    llc_hits: int = 0
    dram_accesses: int = 0
    dram_row_hits: int = 0
    memory_stall_cycles: int = 0
    overhead_cycles: int = 0
    iterations_executed: int = 0

    # The run manifest (repro.obs.build_manifest) is attached as a plain
    # instance attribute, NOT a dataclass field: manifests carry wall times
    # and host identity, which must stay out of dataclasses.asdict() so
    # field-identical comparisons (equivalence suite, golden snapshots)
    # keep meaning "same simulated behaviour".
    manifest = None

    @property
    def avg_network_latency(self) -> float:
        if self.network_packets == 0:
            return 0.0
        return self.network_total_latency / self.network_packets

    @property
    def avg_hops(self) -> float:
        if self.network_packets == 0:
            return 0.0
        return self.network_total_hops / self.network_packets

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def llc_hit_rate(self) -> float:
        return self.llc_hits / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def llc_miss_rate(self) -> float:
        return 1.0 - self.llc_hit_rate if self.llc_accesses else 0.0

    @property
    def memory_stall_fraction(self) -> float:
        if self.execution_cycles == 0:
            return 0.0
        return self.memory_stall_cycles / self.execution_cycles

    @property
    def overhead_fraction(self) -> float:
        if self.execution_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.execution_cycles


def percent_reduction(baseline: float, optimized: float) -> float:
    """``100 * (baseline - optimized) / baseline`` (0 for a zero baseline)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - optimized) / baseline


@dataclass
class Comparison:
    """Baseline-vs-optimized deltas for one application."""

    name: str
    baseline: RunStats
    optimized: RunStats

    @property
    def network_latency_reduction(self) -> float:
        return percent_reduction(
            self.baseline.avg_network_latency, self.optimized.avg_network_latency
        )

    @property
    def execution_time_reduction(self) -> float:
        return percent_reduction(
            self.baseline.execution_cycles, self.optimized.execution_cycles
        )

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.optimized.overhead_fraction


def geomean(values: List[float]) -> float:
    """Geometric mean of percentage improvements, as the paper plots.

    All-positive inputs (every result the paper reports) use the plain
    geometric mean.  A non-positive entry -- a regression -- makes that
    undefined, and silently flooring it would report a -12% regression as
    ~0% improvement; instead the aggregate moves to ratio space, the
    sign-aware multiplicative mean ``100 * (prod(1 + v/100))**(1/n) - 100``,
    which keeps the sign of the net effect (a lone ``[-12.0]`` aggregates
    to exactly -12.0).  A value at or below -100% (a more-than-doubled
    metric) has no ratio-space image, so the result is NaN; both fallbacks
    emit a ``RuntimeWarning`` so regressions cannot pass unnoticed.
    """
    if not values:
        return 0.0
    if min(values) > 0.0:
        logs = [math.log(v) for v in values]
        return math.exp(sum(logs) / len(logs))
    if min(values) <= -100.0:
        warnings.warn(
            "geomean: value <= -100% has no multiplicative aggregate; "
            "returning NaN",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    warnings.warn(
        "geomean over non-positive reductions: aggregating sign-aware in "
        "ratio space instead of flooring regressions to ~0",
        RuntimeWarning,
        stacklevel=2,
    )
    logs = [math.log1p(v / 100.0) for v in values]
    return 100.0 * math.expm1(sum(logs) / len(logs))


def mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
