"""The manycore machine: cores + caches + NoC + memory controllers.

``Manycore.access`` walks one load/store through the full hierarchy and
returns its completion time, generating network packets (with contention)
along the way.  The message sequences follow Section 2:

Private LLC
    L1 miss -> local L2 (no NoC).  L2 miss -> request to the address's MC,
    DRAM access, data response back to the node.

Shared LLC (S-NUCA)
    L1 miss -> request to the *home bank* (address-determined; possibly
    remote).  Bank hit -> data response bank -> core.  Bank miss -> request
    bank -> MC, DRAM, fill MC -> bank, then data bank -> core.

Dirty evictions ride the network as writeback packets and coherence
invalidations as control packets; both add traffic (contention) without
extending the triggering access's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cache.hierarchy import AccessOutcome, CacheHierarchy
from repro.cache.snuca import LLCOrganization, SnucaMapper
from repro.memory.controller import MemoryController
from repro.memory.translation import IdentityTranslation, PageTable
from repro.noc.analytic import AnalyticNetwork
from repro.noc.network import BaseNetwork, WormholeNetwork
from repro.noc.packet import Packet

from .config import NetworkModel, SystemConfig
from .stats import RunStats


@dataclass(frozen=True)
class AccessTiming:
    """Timing/outcome of a single access (returned to the engine)."""

    completion: int
    network_cycles: int
    l1_hit: bool
    llc_hit: bool
    home_bank: Optional[int] = None
    mc: Optional[int] = None


Observer = Callable[[int, int, bool, AccessTiming], None]
"""Called as ``observer(tag, vaddr, is_write, timing)`` for every access."""


class Manycore:
    """One simulated machine instance.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) attaches the
    observability layer: the machine allocates the run's spatial
    accumulators, wires the network's per-link/per-packet recording, and
    :meth:`collect_spatial` snapshots per-component counters into them.
    Unlike the per-access :attr:`observer` callback, telemetry never forces
    the engine off its batched fast path.
    """

    def __init__(
        self,
        config: SystemConfig,
        translation: Optional[object] = None,
        telemetry: Optional[object] = None,
        faults: Optional[object] = None,
    ):
        self.config = config
        self.mesh = config.build_mesh()
        self.layout = config.layout()
        self.distribution = config.build_distribution()
        # Fault injection: an empty plan is normalized to None so every
        # zero-fault machine takes literally the pristine code paths.
        if faults is not None and faults.is_empty:
            faults = None
        self.fault_plan = faults
        self.degraded = None
        if faults is not None:
            from repro.faults import DegradedDistribution, DegradedTopology

            self.degraded = DegradedTopology(
                self.mesh, faults, router_delay=config.router_delay
            )
            # Re-interleave addresses off dead MCs/banks *before* the
            # S-NUCA mapper is built so home lookups (scalar and batch)
            # agree on the degraded distribution.
            self.distribution = DegradedDistribution.from_plan(
                self.distribution, faults
            )
        self.snuca = SnucaMapper(
            mesh=self.mesh,
            distribution=self.distribution,
            organization=config.llc_organization,
        )
        self.hierarchy = CacheHierarchy(
            num_nodes=self.mesh.num_nodes,
            snuca=self.snuca,
            l1_config=config.l1_config(),
            l2_config=config.l2_config(),
        )
        self.network = self._build_network(config)
        self.mcs: List[MemoryController] = [
            MemoryController(
                index=i,
                timings=config.dram,
                layout=self.layout,
                buffer_entries=config.mc_buffer_entries,
                num_channels=config.num_mcs,
            )
            for i in range(config.num_mcs)
        ]
        if self.degraded is not None:
            self.network.apply_faults(self.degraded)
            for index, factor in self.degraded.mc_throttle.items():
                self.mcs[index].throttle = factor
        self.translation = translation or IdentityTranslation(self.layout)
        self.observer: Optional[Observer] = None
        self._line_mask = ~(config.l2_line_bytes - 1)
        if telemetry is not None and not getattr(telemetry, "enabled", True):
            telemetry = None  # a disabled hub is the same as no hub
        self.telemetry = telemetry
        self.spatial = None
        if telemetry is not None:
            self.spatial = telemetry.ensure_spatial(
                self.mesh.num_nodes, config.num_mcs
            )
            self.network.set_telemetry(telemetry)
            if self.fault_plan is not None:
                plan_hash = self.fault_plan.plan_hash()
                for spec in self.fault_plan.to_specs():
                    telemetry.events.emit(
                        "fault.inject", spec=spec, plan_hash=plan_hash
                    )

    @staticmethod
    def _build_network(config: SystemConfig) -> BaseNetwork:
        mesh = config.build_mesh()
        if config.network_model is NetworkModel.WORMHOLE:
            return WormholeNetwork(mesh, router_delay=config.router_delay)
        if config.network_model is NetworkModel.ANALYTIC:
            return AnalyticNetwork(mesh, router_delay=config.router_delay)
        return WormholeNetwork(
            mesh, router_delay=config.router_delay, zero_latency=True
        )

    # ------------------------------------------------------------------
    def _send(self, src: int, dst: int, time: int, payload_bytes: int) -> int:
        """Inject one packet; returns its arrival time at ``dst``."""
        if payload_bytes:
            packet = Packet.data_response(src, dst, time, payload_bytes)
        else:
            packet = Packet.request(src, dst, time)
        return self.network.transfer(packet)

    def _fire_and_forget(self, src: int, dst: int, time: int, payload: int) -> None:
        self._send(src, dst, time, payload)

    # ------------------------------------------------------------------
    def access(
        self, core: int, vaddr: int, is_write: bool, time: int, tag: int = -1
    ) -> AccessTiming:
        """Execute one memory access issued by ``core`` at ``time``."""
        paddr = self.translation.translate(vaddr)
        outcome = self.hierarchy.access(core, paddr, is_write)
        if outcome.l1_hit:
            timing = AccessTiming(
                completion=time + self.config.l1_latency,
                network_cycles=0,
                l1_hit=True,
                llc_hit=True,
            )
            self._observe(tag, vaddr, is_write, timing)
            return timing

        timing = self._miss_path(core, paddr, time, outcome)
        self._observe(tag, vaddr, is_write, timing)
        return timing

    # ------------------------------------------------------------------
    def translate_batch(self, vaddrs: np.ndarray) -> np.ndarray:
        """Translate a stream of virtual addresses in stream order.

        Uses the translation object's vectorized ``translate_batch`` when it
        has one; otherwise falls back to a scalar walk.  Either way the
        page-allocation side effects (first-touch faults) happen in exactly
        the order a scalar access loop would trigger them.
        """
        batch = getattr(self.translation, "translate_batch", None)
        if batch is not None:
            return batch(vaddrs)
        translate = self.translation.translate
        return np.fromiter(
            (translate(int(v)) for v in vaddrs),
            dtype=np.int64,
            count=len(vaddrs),
        )

    def access_batch(
        self,
        core: int,
        vaddrs: np.ndarray,
        writes: np.ndarray,
        paddrs: Optional[np.ndarray] = None,
    ):
        """Open a batched fast path over ``core``'s next access stream.

        ``vaddrs[i]``/``writes[i]`` describe the ``i``-th access ``core``
        will issue.  Addresses are translated in bulk and the stream's
        L1-hit majority is consumed through the returned
        :class:`~repro.cache.cache.BulkAccessCursor` without entering
        Python per reference; each consumed access costs ``l1_latency``
        and generates no NoC/MC traffic, exactly like the scalar
        :meth:`access` hit path.  Accesses the cursor stops at are
        guaranteed L1 misses and must be replayed through scalar
        :meth:`access` (which charges their network/DRAM walk), then
        stepped over with ``advance_miss``.

        Pass ``paddrs`` when the stream was already translated (e.g. once
        per chunk via :meth:`translate_batch`) to avoid re-translating.
        Not valid while an :attr:`observer` is attached: the bulk path
        does not produce per-access timings to report.
        """
        if self.observer is not None:
            raise RuntimeError(
                "access_batch cannot honor a per-access observer; "
                "use scalar access() while observing"
            )
        if paddrs is None:
            paddrs = self.translate_batch(vaddrs)
        return self.hierarchy.l1_bulk_cursor(core, paddrs, writes)

    def _miss_path(
        self, core: int, paddr: int, time: int, outcome: AccessOutcome
    ) -> AccessTiming:
        cfg = self.config
        bank = outcome.home_bank
        bank_node = self.snuca.bank_node(bank)
        line_bytes = cfg.l2_line_bytes
        t = time + cfg.l1_latency  # L1 lookup preceded the miss
        network_cycles = 0

        # Leg 1: core -> home bank (shared LLC only; private banks are local).
        if bank_node != core:
            arrival = self._send(core, bank_node, t, payload_bytes=0)
            network_cycles += arrival - t
            t = arrival
        t += cfg.llc_latency

        mc_index: Optional[int] = None
        if outcome.mc_needed:
            mc_index = self.distribution.mc_of(paddr)
            mc_node = self.mesh.mc_node(mc_index)
            # Leg 2: bank -> MC request.
            if mc_node != bank_node:
                arrival = self._send(bank_node, mc_node, t, payload_bytes=0)
                network_cycles += arrival - t
                t = arrival
            t = self.mcs[mc_index].access(paddr, t)
            # Leg 3: the MC responds *directly to the requester* (standard
            # directory-protocol fill), so the requesting core's proximity
            # to the MC shortens the heavyweight data leg -- the effect the
            # MAI/MAC placement exploits (Figure 1b/1d).  The home bank is
            # filled off the critical path.
            if bank_node != core and mc_node != bank_node:
                self._fire_and_forget(mc_node, bank_node, t, line_bytes)
            if mc_node != core:
                arrival = self._send(mc_node, core, t, line_bytes)
                network_cycles += arrival - t
                t = arrival
            return self._finish(
                outcome, paddr, bank_node, t, network_cycles, mc_index
            )
        if outcome.coherence.forward_from_owner is not None:
            # Dirty copy in another L1: bank forwards, owner sends the data.
            owner = outcome.coherence.forward_from_owner
            if owner != bank_node:
                self._fire_and_forget(bank_node, owner, t, payload=0)
            if owner != core:
                arrival = self._send(owner, core, t, line_bytes)
                network_cycles += arrival - t
                t = arrival
            return self._finish(
                outcome, paddr, bank_node, t, network_cycles, mc_index
            )

        # Leg 4: bank -> core data response.
        if bank_node != core:
            arrival = self._send(bank_node, core, t, line_bytes)
            network_cycles += arrival - t
            t = arrival
        return self._finish(outcome, paddr, bank_node, t, network_cycles, mc_index)

    def _finish(
        self,
        outcome: AccessOutcome,
        paddr: int,
        bank_node: int,
        t: int,
        network_cycles: int,
        mc_index: Optional[int],
    ) -> AccessTiming:
        cfg = self.config
        # Off-critical-path traffic: LLC writeback of a dirty victim...
        if outcome.llc_victim is not None:
            victim_mc = self.distribution.mc_of(outcome.llc_victim)
            victim_mc_node = self.mesh.mc_node(victim_mc)
            if victim_mc_node != bank_node:
                self._fire_and_forget(
                    bank_node, victim_mc_node, t, cfg.l2_line_bytes
                )
        # ...and coherence invalidations to remote sharers.  One LLC line can
        # cover several (smaller) L1 lines; drop them all.
        if outcome.coherence.invalidate_nodes:
            llc_line_base = paddr & self._line_mask
            l1_line = cfg.l1_line_bytes
            for node in outcome.coherence.invalidate_nodes:
                if node != bank_node:
                    self._fire_and_forget(bank_node, node, t, payload=0)
                l1 = self.hierarchy.l1(node)
                for offset in range(0, cfg.l2_line_bytes, l1_line):
                    l1.invalidate(llc_line_base + offset)
        return AccessTiming(
            completion=t,
            network_cycles=network_cycles,
            l1_hit=False,
            llc_hit=outcome.llc_hit,
            home_bank=outcome.home_bank,
            mc=mc_index,
        )

    # ------------------------------------------------------------------
    def _observe(
        self, tag: int, vaddr: int, is_write: bool, timing: AccessTiming
    ) -> None:
        if self.observer is not None:
            self.observer(tag, vaddr, is_write, timing)

    # ------------------------------------------------------------------
    def home_banks_batch(self, paddrs: np.ndarray) -> np.ndarray:
        """Vectorized home-bank indices of a physical address stream.

        Shared LLC: the S-NUCA address-determined bank.  Private LLC: every
        address a core touches homes in the core's own bank, so the stream's
        home distribution is meaningless per address -- callers pass the
        issuing core instead (the engine handles that fold).
        """
        return self.distribution.bank_of_batch(paddrs)

    def collect_spatial(self):
        """Refresh and return the run's spatial accumulators.

        Per-component counters (per-node L1, per-bank LLC, per-MC) are
        snapshots taken here; live stream accumulators (bank touches, link
        flits) were recorded as the run executed.  Requires telemetry to
        have been attached at construction.
        """
        spatial = self.spatial
        if spatial is None:
            raise RuntimeError(
                "no telemetry attached; pass telemetry= to Manycore()"
            )
        l1_acc, l1_hit = self.hierarchy.per_node_l1_stats()
        spatial.tile_accesses[:] = l1_acc
        spatial.tile_l1_hits[:] = l1_hit
        bank_acc, bank_hit = self.hierarchy.per_bank_llc_stats()
        spatial.bank_requests[:] = bank_acc
        spatial.bank_hits[:] = bank_hit
        for i, mc in enumerate(self.mcs):
            spatial.mc_requests[i] = mc.stats.requests
            spatial.mc_queue_delay[i] = mc.stats.total_queue_delay
        return spatial

    # ------------------------------------------------------------------
    def fill_stats(self, stats: RunStats) -> None:
        """Copy component counters into a :class:`RunStats`."""
        net = self.network.stats
        stats.network_packets = net.packets
        stats.network_total_latency = net.total_latency
        stats.network_total_hops = net.total_hops
        stats.network_flit_hops = net.flit_hops
        l1_acc, l1_hit = self.hierarchy.aggregate_l1_stats()
        stats.l1_accesses, stats.l1_hits = l1_acc, l1_hit
        llc_acc, llc_hit = self.hierarchy.aggregate_llc_stats()
        stats.llc_accesses, stats.llc_hits = llc_acc, llc_hit
        stats.dram_accesses = sum(mc.channel.stats.reads for mc in self.mcs)
        stats.dram_row_hits = sum(mc.channel.stats.row_hits for mc in self.mcs)

    def reset(self) -> None:
        self.hierarchy.reset()
        for mc in self.mcs:
            mc.reset()
        if hasattr(self.network, "reset"):
            self.network.reset()
        else:  # pragma: no cover - all concrete networks define reset
            self.network.reset_stats()
        if self.spatial is not None:
            # Live stream accumulators follow the component counters; the
            # snapshot fields are refreshed by collect_spatial anyway.
            self.spatial.bank_touches[:] = 0
            self.spatial.link_flits.clear()
