"""Execution engine: runs a scheduled program on a machine.

Per-core timelines advance through the program's loop nests in order, with a
barrier between nests (the nests are parallel loops; successive nests may
depend on each other).  Cores are interleaved in global-time order via a
heap so network/MC contention sees a realistic mix of traffic, executing a
small chunk of iterations per turn to keep Python overhead bounded.

A run is a list of :class:`TripPlan` -- one per trip of the outer timing
loop.  Irregular codes use several trips: trip 1 runs the default schedule
under observation (the *inspector*), later trips run the derived schedule
(the *executor*); ``overhead_cycles`` charges the inspector's bookkeeping to
every core at the end of its trip.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.snuca import LLCOrganization

from repro.ir.iterspace import IterationSet

from .machine import Manycore
from .stats import RunStats
from .trace import ProgramTrace, SetTrace


@dataclass
class ObservedSet:
    """Runtime-observed behaviour of one iteration set (inspector output)."""

    miss_mc: np.ndarray
    hit_bank: np.ndarray
    llc_hits: int = 0
    llc_accesses: int = 0

    @property
    def hit_fraction(self) -> float:
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_hits / self.llc_accesses


@dataclass
class TripPlan:
    """Schedule (and instrumentation) of one timing-loop trip.

    ``observe_label`` turns on per-set observation recording for this trip;
    trips sharing a label accumulate into the same table, so the inspector
    trip and the executor trips can be compared afterwards.
    """

    schedules: Dict[int, Dict[int, int]]
    observe_label: Optional[str] = None
    overhead_cycles: int = 0


class ExecutionEngine:
    """Drives one program instance over one machine.

    ``mode`` selects the execution implementation:

    * ``"fast"`` (default) -- batched fast path: per chunk, addresses are
      translated in bulk and the L1-hit majority is pre-filtered through
      :meth:`Manycore.access_batch` without entering Python per reference;
      only L1 misses (the accesses that generate NoC/MC traffic) take the
      scalar :meth:`Manycore.access` walk.  Behaviour-identical to the
      reference path -- same ``RunStats``, same observation tables, same
      packet injection times -- which ``tests/sim/test_engine_equivalence.py``
      enforces across the config matrix.
    * ``"reference"`` -- the original one-``access``-call-per-reference
      scalar model.

    When unspecified, the mode follows ``machine.config.engine_mode``.  A
    machine with an attached per-access :attr:`Manycore.observer` is always
    driven through the reference path (the bulk path produces no per-access
    timings to report).
    """

    def __init__(
        self,
        machine: Manycore,
        trace: ProgramTrace,
        chunk_iterations: int = 16,
        barrier_cost: int = 100,
        mode: Optional[str] = None,
    ):
        if chunk_iterations < 1:
            raise ValueError("chunk size must be positive")
        if mode is None:
            mode = getattr(machine.config, "engine_mode", "fast")
        if mode not in ("fast", "reference"):
            raise ValueError("mode must be 'fast' or 'reference'")
        self.machine = machine
        self.trace = trace
        self.chunk_iterations = chunk_iterations
        self.barrier_cost = barrier_cost
        self.mode = mode
        self.observations: Dict[str, Dict[Tuple[int, int], ObservedSet]] = {}
        # Telemetry attachment points, hoisted out of the chunk loops; all
        # None when the machine carries no telemetry (zero hot-path cost).
        telemetry = machine.telemetry
        self._spatial = machine.spatial
        self._events = (
            telemetry.events
            if telemetry is not None and telemetry.events.enabled
            else None
        )
        self._shared_llc = (
            machine.snuca.organization is LLCOrganization.SHARED
        )
        self._warned_observer_fallback = False

    # ------------------------------------------------------------------
    def run(self, plans: List[TripPlan], start_cycle: int = 0) -> RunStats:
        """Execute all trips; returns aggregate statistics.

        ``start_cycle`` lets a caller continue a run (e.g. executor trips
        after a separately run inspector trip) without resetting machine
        component clocks: all core timelines begin there, and the returned
        ``execution_cycles`` is the *absolute* finish time.
        """
        if not plans:
            raise ValueError("need at least one trip plan")
        stats = RunStats()
        num_cores = self.machine.mesh.num_nodes
        clock = [start_cycle] * num_cores
        events = self._events
        for trip_index, plan in enumerate(plans):
            trip_start = max(clock)
            clock = self._run_trip(plan, clock, stats)
            if plan.overhead_cycles:
                clock = [t + plan.overhead_cycles for t in clock]
                stats.overhead_cycles += plan.overhead_cycles
            if events is not None:
                events.emit(
                    "engine.trip",
                    level="debug",
                    trip=trip_index,
                    observe_label=plan.observe_label,
                    start_cycle=trip_start,
                    end_cycle=max(clock),
                    overhead_cycles=plan.overhead_cycles,
                )
        stats.execution_cycles = max(clock) if clock else 0
        self.machine.fill_stats(stats)
        return stats

    # ------------------------------------------------------------------
    def _run_trip(
        self, plan: TripPlan, clock: List[int], stats: RunStats
    ) -> List[int]:
        num_cores = self.machine.mesh.num_nodes
        events = self._events
        for nest_index in range(len(self.trace.instance.program.nests)):
            schedule = plan.schedules.get(nest_index)
            if schedule is None:
                raise KeyError(f"no schedule for nest {nest_index}")
            start = max(clock) + self.barrier_cost
            clock = self._run_nest(
                nest_index, schedule, start, num_cores, stats, plan.observe_label
            )
            if events is not None:
                events.emit(
                    "engine.nest",
                    level="debug",
                    nest=nest_index,
                    start_cycle=start,
                    end_cycle=max(clock),
                )
        return clock

    def _run_nest(
        self,
        nest_index: int,
        schedule: Dict[int, int],
        start: int,
        num_cores: int,
        stats: RunStats,
        observe_label: Optional[str],
    ) -> List[int]:
        cfg = self.machine.config
        nest = self.trace.instance.program.nests[nest_index]
        compute = nest.compute_cycles
        overlap = 1.0 - cfg.stall_overlap
        iteration_sets = self.trace.iteration_sets[nest_index]
        sets_by_id = {s.set_id: s for s in iteration_sets}
        # The bulk path cannot feed a per-access observer; fall back.
        use_fast = self.mode == "fast" and self.machine.observer is None
        if (
            self.mode == "fast"
            and self.machine.observer is not None
            and not self._warned_observer_fallback
        ):
            self._warned_observer_fallback = True
            warnings.warn(
                "engine_mode='fast' with an attached machine.observer: "
                "falling back to the scalar reference path (the bulk path "
                "produces no per-access timings to report).  Spatial "
                "telemetry (repro.obs) records per-tile/bank/MC/link "
                "traffic without forcing this fallback.",
                RuntimeWarning,
                stacklevel=3,
            )
        run_chunk = (
            self._run_chunk_fast if use_fast else self._run_chunk_reference
        )

        # Per-core queue of set traces, in set-id order.
        queues: Dict[int, List[SetTrace]] = {c: [] for c in range(num_cores)}
        for set_id in sorted(schedule):
            core = schedule[set_id]
            queues[core].append(
                self.trace.set_trace(nest_index, sets_by_id[set_id])
            )

        finish = [start] * num_cores
        heap: List[Tuple[int, int]] = []
        cursors: Dict[int, Tuple[int, int]] = {}  # core -> (queue idx, iter idx)
        for core, queue in queues.items():
            if queue:
                cursors[core] = (0, 0)
                heapq.heappush(heap, (start, core))

        chunk = self.chunk_iterations
        while heap:
            t, core = heapq.heappop(heap)
            qidx, k = cursors[core]
            trace = queues[core][qidx]
            limit = min(trace.iterations, k + chunk)
            observed = None
            if observe_label is not None:
                observed = self._observed_entry(
                    observe_label, nest_index, trace.set_id
                )
            t = run_chunk(
                core, trace, k, limit, t, compute, overlap, stats, observed
            )
            k = limit
            if k >= trace.iterations:
                qidx += 1
                k = 0
            if qidx < len(queues[core]):
                cursors[core] = (qidx, k)
                heapq.heappush(heap, (t, core))
            else:
                finish[core] = t
        return finish

    # ------------------------------------------------------------------
    def _run_chunk_reference(
        self,
        core: int,
        trace: SetTrace,
        k: int,
        limit: int,
        t: int,
        compute: int,
        overlap: float,
        stats: RunStats,
        observed: Optional[ObservedSet],
    ) -> int:
        """Scalar reference model: one machine access per reference."""
        machine_access = self.machine.access
        addresses = trace.addresses
        writes = trace.writes
        n_refs = trace.refs_per_iteration
        if self._spatial is not None:
            # Same accounting as the bulk path: translate the chunk stream
            # up front (first-touch faults happen in stream order, exactly
            # as the scalar walk below would trigger them -- re-translation
            # is idempotent) and bin its home banks in one pass.
            flat = np.ascontiguousarray(addresses[k:limit]).reshape(-1)
            paddrs = self.machine.translate_batch(flat)
            self._record_touches(core, paddrs)
        while k < limit:
            t += compute
            row = addresses[k]
            for r in range(n_refs):
                timing = machine_access(
                    core, int(row[r]), bool(writes[r]), t, trace.set_id
                )
                stall = timing.completion - t
                if timing.l1_hit:
                    t += stall
                else:
                    charged = int(stall * overlap)
                    t += charged
                    stats.memory_stall_cycles += charged
                    if observed is not None:
                        observed.llc_accesses += 1
                        if timing.mc is not None:
                            observed.miss_mc[timing.mc] += 1
                        else:
                            observed.llc_hits += 1
                            observed.hit_bank[timing.home_bank] += 1
            stats.iterations_executed += 1
            k += 1
        return t

    def _run_chunk_fast(
        self,
        core: int,
        trace: SetTrace,
        k: int,
        limit: int,
        t: int,
        compute: int,
        overlap: float,
        stats: RunStats,
        observed: Optional[ObservedSet],
    ) -> int:
        """Batched fast path: bulk L1-hit runs, scalar misses.

        Time bookkeeping is closed-form over each hit run: ``compute`` is
        charged once per iteration boundary crossed and ``l1_latency`` once
        per hit, which is exactly what the reference loop accumulates for
        the same accesses.  Misses are replayed through the scalar machine
        walk at the very cycle the reference model would issue them, so
        network contention, DRAM timing and observation accounting are
        bit-identical.
        """
        machine = self.machine
        machine_access = machine.access
        l1_latency = machine.config.l1_latency
        n_refs = trace.refs_per_iteration
        lo = k * n_refs
        hi = limit * n_refs
        vaddrs = trace.flat_addresses[lo:hi]
        writes = trace.flat_writes[lo:hi]
        if self._spatial is not None:
            # Spatial telemetry rides the batched stream natively: one bulk
            # translation (reused by access_batch) and one bincount; the
            # L1-hit majority never enters Python per reference.
            paddrs = machine.translate_batch(vaddrs)
            self._record_touches(core, paddrs)
            cursor = machine.access_batch(core, vaddrs, writes, paddrs=paddrs)
        else:
            cursor = machine.access_batch(core, vaddrs, writes)
        total = hi - lo
        pos = 0
        while pos < total:
            hits = cursor.consume_hits()
            if hits:
                end = pos + hits
                # Iteration boundaries crossed = indices in [pos, end) that
                # start an iteration (flat index divisible by n_refs).
                starts = (end - 1) // n_refs - (pos - 1) // n_refs
                t += starts * compute + hits * l1_latency
                pos = end
                if pos >= total:
                    break
            if pos % n_refs == 0:
                t += compute
            timing = machine_access(
                core, int(vaddrs[pos]), bool(writes[pos]), t, trace.set_id
            )
            stall = timing.completion - t
            if timing.l1_hit:  # pragma: no cover - access_batch guarantees miss
                t += stall
            else:
                charged = int(stall * overlap)
                t += charged
                stats.memory_stall_cycles += charged
                if observed is not None:
                    observed.llc_accesses += 1
                    if timing.mc is not None:
                        observed.miss_mc[timing.mc] += 1
                    else:
                        observed.llc_hits += 1
                        observed.hit_bank[timing.home_bank] += 1
            cursor.advance_miss()
            pos += 1
        stats.iterations_executed += limit - k
        return t

    def _record_touches(self, core: int, paddrs: np.ndarray) -> None:
        """Bin one chunk's home banks into the spatial accumulators.

        Shared LLC: the S-NUCA home of each address.  Private LLC: every
        address homes in the issuing core's own bank, so the whole chunk
        folds to one scalar add.
        """
        if self._shared_llc:
            self._spatial.record_bank_touches(
                self.machine.home_banks_batch(paddrs)
            )
        else:
            self._spatial.bank_touches[core] += len(paddrs)

    def _observed_entry(
        self, label: str, nest_index: int, set_id: int
    ) -> ObservedSet:
        table = self.observations.setdefault(label, {})
        key = (nest_index, set_id)
        entry = table.get(key)
        if entry is None:
            entry = ObservedSet(
                miss_mc=np.zeros(self.machine.config.num_mcs, dtype=np.int64),
                hit_bank=np.zeros(self.machine.mesh.num_nodes, dtype=np.int64),
            )
            table[key] = entry
        return entry

    # ------------------------------------------------------------------
    def observed_mai(
        self, label: str, nest_index: int, set_id: int
    ) -> Optional[np.ndarray]:
        """Normalized observed MAI of one set (None if never observed)."""
        entry = self.observations.get(label, {}).get((nest_index, set_id))
        if entry is None:
            return None
        total = entry.miss_mc.sum()
        if total == 0:
            return np.zeros_like(entry.miss_mc, dtype=float)
        return entry.miss_mc / total

    def observed_cai_regions(
        self, label: str, nest_index: int, set_id: int, region_of_node
    ) -> Optional[np.ndarray]:
        """Observed CAI folded onto regions via ``region_of_node``."""
        entry = self.observations.get(label, {}).get((nest_index, set_id))
        if entry is None:
            return None
        num_regions = max(
            region_of_node(n) for n in range(len(entry.hit_bank))
        ) + 1
        counts = np.zeros(num_regions, dtype=float)
        for node, count in enumerate(entry.hit_bank):
            if count:
                counts[region_of_node(node)] += count
        total = counts.sum()
        return counts / total if total else counts
