"""Vectorized generation of per-iteration-set access streams.

Evaluating affine index expressions iteration-by-iteration in Python is the
dominant cost of simulation, so the trace generator lowers each (nest,
iteration set) to numpy arrays once: ``addresses[k, r]`` is the virtual
address of reference ``r`` at the set's ``k``-th iteration.  Affine
references become closed-form array arithmetic; indirect references become
one gather through the index-array contents.  The arrays are cached per
program instance and shared by every run (baseline, optimized, sensitivity)
over that instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ir.iterspace import ConcreteDomain, IterationSet
from repro.ir.loops import ProgramInstance
from repro.ir.refs import AffineAccess, IndirectAccess
from repro.ir.symbolic import AffineExpr


def binding_arrays(
    dom: ConcreteDomain, start: int, stop: int
) -> Dict[str, np.ndarray]:
    """Per-loop-index value arrays for linear iterations ``[start, stop)``."""
    linear = np.arange(start, stop, dtype=np.int64)
    out: Dict[str, np.ndarray] = {}
    remainder = linear
    for name, lo, extent in zip(
        reversed(dom.names), reversed(dom.lowers), reversed(dom.extents)
    ):
        out[name] = lo + remainder % extent
        remainder = remainder // extent
    return out


def eval_expr_arrays(
    expr: AffineExpr, bindings: Dict[str, np.ndarray], length: int
) -> np.ndarray:
    """Evaluate an affine expression over binding arrays."""
    total = np.full(length, expr.const, dtype=np.int64)
    for sym, coeff in expr.coeffs:
        if sym not in bindings:
            raise KeyError(f"unbound symbol {sym!r} in vectorized evaluation")
        total = total + coeff * bindings[sym]
    return total


def _linearize(
    indices: Sequence[np.ndarray], shape: Tuple[int, ...], array_name: str
) -> np.ndarray:
    linear = np.zeros_like(indices[0])
    for idx, extent in zip(indices, shape):
        if (idx < 0).any() or (idx >= extent).any():
            raise IndexError(f"vectorized access to {array_name} out of bounds")
        linear = linear * extent + idx
    return linear


def reference_addresses(
    ref: object,
    bindings: Dict[str, np.ndarray],
    instance: ProgramInstance,
    length: int,
) -> np.ndarray:
    """Addresses of one reference over a block of iterations."""
    space = instance.space
    if isinstance(ref, AffineAccess):
        shape = space.shape(ref.array.name)
        idx_arrays = [
            eval_expr_arrays(expr, bindings, length) for expr in ref.index.indices
        ]
        linear = _linearize(idx_arrays, shape, ref.array.name)
        return space.base(ref.array.name) + linear * ref.array.elem_bytes
    if isinstance(ref, IndirectAccess):
        data = instance.runtime.get(ref.index_array.name)
        if data is None:
            raise KeyError(
                f"index array {ref.index_array.name!r} missing from runtime data"
            )
        pos = eval_expr_arrays(ref.position, bindings, length)
        if (pos < 0).any() or (pos >= len(data)).any():
            raise IndexError(
                f"index array {ref.index_array.name} position out of bounds"
            )
        first = data[pos] + ref.offset
        trailing = [
            eval_expr_arrays(expr, bindings, length) for expr in ref.trailing
        ]
        shape = space.shape(ref.array.name)
        linear = _linearize([first] + trailing, shape, ref.array.name)
        return space.base(ref.array.name) + linear * ref.array.elem_bytes
    raise TypeError(f"unknown reference type {type(ref)!r}")


@dataclass(frozen=True)
class SetTrace:
    """The access stream of one iteration set.

    ``addresses[k, r]``: address of reference ``r`` at local iteration ``k``.
    ``writes[r]``: whether reference ``r`` stores.
    """

    set_id: int
    addresses: np.ndarray
    writes: np.ndarray

    @property
    def iterations(self) -> int:
        return self.addresses.shape[0]

    @property
    def refs_per_iteration(self) -> int:
        return self.addresses.shape[1]

    @cached_property
    def flat_addresses(self) -> np.ndarray:
        """Row-major flattening of ``addresses`` (a view; issue order)."""
        return np.ascontiguousarray(self.addresses).reshape(-1)

    @cached_property
    def flat_writes(self) -> np.ndarray:
        """``writes`` tiled to match :attr:`flat_addresses` element-wise."""
        return np.tile(self.writes, self.iterations)


class ProgramTrace:
    """Lazy per-(nest, set) trace cache for one program instance."""

    def __init__(
        self,
        instance: ProgramInstance,
        iteration_sets: Dict[int, List[IterationSet]],
    ):
        self.instance = instance
        self.iteration_sets = iteration_sets
        self._cache: Dict[Tuple[int, int], SetTrace] = {}

    def set_trace(self, nest_index: int, iteration_set: IterationSet) -> SetTrace:
        key = (nest_index, iteration_set.set_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        trace = self._build(nest_index, iteration_set)
        self._cache[key] = trace
        return trace

    def _build(self, nest_index: int, iteration_set: IterationSet) -> SetTrace:
        nest = self.instance.program.nests[nest_index]
        dom = self.instance.nest_domain(nest_index)
        bindings = binding_arrays(dom, iteration_set.start, iteration_set.stop)
        length = iteration_set.size
        columns = [
            reference_addresses(ref, bindings, self.instance, length)
            for ref in nest.references
        ]
        addresses = np.stack(columns, axis=1)
        writes = np.array([ref.is_write for ref in nest.references], dtype=bool)
        return SetTrace(iteration_set.set_id, addresses, writes)

    def total_accesses(self) -> int:
        """Accesses in one full pass over every nest (forces generation)."""
        total = 0
        for nest_index, sets in self.iteration_sets.items():
            for iteration_set in sets:
                trace = self.set_trace(nest_index, iteration_set)
                total += trace.iterations * trace.refs_per_iteration
        return total
