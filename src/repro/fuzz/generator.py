"""Seed-deterministic fuzz case generation.

Each case derives from ``random.Random(f"repro.fuzz:{seed}:{index}")`` --
string seeding hashes through SHA-512, so the stream is stable across
platforms and python builds, and every (seed, index) pair owns an
independent stream: case k never depends on how many cases preceded it.

The generator only emits *legal* cases: region sizes divide the mesh,
bank faults require a shared LLC, link faults connect mesh neighbours,
and every candidate fault plan is validated against the concrete mesh
(the FLT001-003 gate) before it is attached -- an illegal draw degrades
to a healthy machine rather than a crashing case.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.faults import FaultPlan

from .spec import FuzzCase

# Weighted draw tables: repetition = probability mass.  The common
# configurations (analytic network, shared LLC, corner MCs) stay the
# bulk of the stream so most cycles go to the engines' hot paths, with
# a steady minority exercising every alternate knob.
_MESHES: Tuple[Tuple[int, int], ...] = (
    (4, 4), (4, 4), (6, 6), (6, 6), (6, 4), (4, 6), (8, 8),
)
_LLC = ("shared", "shared", "shared", "private")
_PLACEMENT = ("corners", "corners", "corners", "edge_middles")
_NETWORK = ("analytic", "analytic", "analytic", "wormhole", "ideal")
_PAGE_BYTES = (2048, 2048, 1024, 4096)
_L2_SIZE = (16384, 16384, 8192, 32768)
_GRANULARITY = ("page", "page", "page", "cache_line")
_DRAM = ("ddr3", "ddr3", "ddr3", "ddr4")
_SET_FRACTION = (0.005, 0.01, 0.01, 0.02)
_MAPPING = ("default", "la", "la")
_CME_ACCURACY = (0.75, 0.85, 0.85, 1.0)
_ELEM_BYTES = (32, 32, 64, 128)
_PATTERNS = (
    "stream", "stream", "stencil2d", "mxm", "gather", "gather", "spmv",
    "bucketed",
)

FAULT_PROBABILITY = 0.4
"""Fraction of cases carrying a single-fault plan."""


def _pick_region(rng: random.Random, extent: int) -> int:
    """A region edge that divides ``extent`` (1x1 regions allowed)."""
    divisors = [d for d in (1, 2, 3, 4) if extent % d == 0]
    return rng.choice(divisors)


def _pick_workload(rng: random.Random) -> List[Tuple[str, int | str]]:
    pattern = rng.choice(_PATTERNS)
    args: List[Tuple[str, int | str]] = [("pattern", pattern)]
    if pattern == "stream":
        args.append(("n", rng.randrange(192, 769, 32)))
        args.append(("refs", rng.randint(1, 3)))
        args.append(("nests", rng.randint(1, 2)))
    elif pattern == "stencil2d":
        args.append(("n", rng.randint(16, 30)))
        args.append(("nests", rng.randint(1, 2)))
    elif pattern == "mxm":
        args.append(("n", rng.randint(18, 32)))
        args.append(("nests", rng.randint(1, 2)))
    elif pattern == "gather":
        args.append(("n", rng.randrange(400, 1201, 50)))
        args.append(("refs", rng.randint(1, 2)))
        args.append(("targets", rng.choice((256, 512, 768))))
    elif pattern == "spmv":
        args.append(("n", rng.randrange(256, 769, 32)))
        args.append(("targets", rng.choice((256, 512))))
    else:  # bucketed
        args.append(("n", rng.randrange(400, 1201, 50)))
        args.append(("targets", rng.choice((256, 512))))
    args.append(("elem_bytes", rng.choice(_ELEM_BYTES)))
    args.append(("compute", rng.randint(2, 6)))
    return args


def _pick_fault(
    rng: random.Random, width: int, height: int, llc: str
) -> Optional[str]:
    """One legal single-fault spec for a ``width`` x ``height`` mesh."""
    kinds = ["link", "mc", "router"]
    if llc == "shared":
        kinds.append("bank")
    kind = rng.choice(kinds)
    if kind == "link":
        x, y = rng.randrange(width), rng.randrange(height)
        steps = [(dx, dy) for dx, dy in ((0, -1), (1, 0), (0, 1), (-1, 0))
                 if 0 <= x + dx < width and 0 <= y + dy < height]
        dx, dy = rng.choice(steps)
        effect = rng.choice(("down", "throttle=0.5", "throttle=0.25"))
        return f"link:{x},{y}->{x + dx},{y + dy}:{effect}"
    if kind == "mc":
        index = rng.randrange(4)
        effect = rng.choice(("offline", "throttle=0.5"))
        return f"mc:{index}:{effect}"
    if kind == "router":
        x, y = rng.randrange(width), rng.randrange(height)
        extra = rng.choice((4, 8, 16))
        return f"router:{x},{y}:hotspot=+{extra}cyc"
    bank = rng.randrange(width * height)
    return f"bank:{bank}:offline"


def generate_case(seed: int, index: int) -> FuzzCase:
    """The ``index``-th case of stream ``seed`` (pure function of both)."""
    rng = random.Random(f"repro.fuzz:{seed}:{index}")
    width, height = rng.choice(_MESHES)
    llc = rng.choice(_LLC)
    case = FuzzCase(
        seed=seed,
        index=index,
        mesh_width=width,
        mesh_height=height,
        region_w=_pick_region(rng, width),
        region_h=_pick_region(rng, height),
        llc=llc,
        mc_placement=rng.choice(_PLACEMENT),
        network=rng.choice(_NETWORK),
        page_bytes=rng.choice(_PAGE_BYTES),
        l2_size_bytes=rng.choice(_L2_SIZE),
        mc_granularity=rng.choice(_GRANULARITY),
        bank_granularity=rng.choice(_GRANULARITY),
        dram=rng.choice(_DRAM),
        iteration_set_fraction=rng.choice(_SET_FRACTION),
        mapping=rng.choice(_MAPPING),
        trips=rng.randint(3, 5),
        cme_accuracy=rng.choice(_CME_ACCURACY),
        workload=tuple(_pick_workload(rng)),
    )
    if rng.random() < FAULT_PROBABILITY:
        spec = _pick_fault(rng, width, height, llc)
        if spec is not None:
            plan = FaultPlan.parse((spec,))
            mesh = case.build_config().build_mesh()
            if not plan.validate_against(mesh):
                case = case.with_updates(faults=plan.to_specs())
    return case


def generate_cases(seed: int, count: int) -> List[FuzzCase]:
    """The first ``count`` cases of stream ``seed``."""
    return [generate_case(seed, index) for index in range(count)]
