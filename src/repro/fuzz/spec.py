"""Fuzz case specs: one generated experiment, serializable and replayable.

A :class:`FuzzCase` pins everything one differential-fuzzing iteration
depends on: the full machine configuration (as plain strings/ints, so a
spec survives JSON round-trips without importing enum machinery), the
synthetic workload knobs forwarded to
:func:`repro.fuzz.synth.build_fuzz_workload`, the optional fault plan
(stored canonicalized, exactly like :class:`repro.exec.SweepCell`), and
the run policy (mapping, trips, estimator accuracy, seed).

The JSON form is the spec's identity: ``to_json()`` serializes with
``sort_keys=True`` and ``case_id()`` digests those bytes, so equal cases
hash equal across processes, and the corpus can file a minimized repro
under a stable name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.cache.snuca import LLCOrganization
from repro.faults import FaultPlan
from repro.memory.distribution import Granularity
from repro.memory.dram import DDR3_1333, DDR4_2400
from repro.noc.topology import MCPlacement
from repro.sim.config import NetworkModel, SystemConfig
from repro.workloads.base import Workload

SPEC_SCHEMA = "repro.fuzz.case/1"
"""Schema tag embedded in every serialized case."""

WORKLOAD_SPEC = "repro.fuzz.synth:build_fuzz_workload"
"""The ``module:factory`` spec sweep cells use to rebuild the workload."""

_DRAM = {"ddr3": DDR3_1333, "ddr4": DDR4_2400}

ScalarArg = Union[str, int, float]
KWPairs = Tuple[Tuple[str, ScalarArg], ...]


def _freeze_workload(args: Any) -> KWPairs:
    """Normalize workload kwargs to a sorted tuple of scalar pairs."""
    if not args:
        return ()
    if isinstance(args, Mapping):
        items = [(str(k), v) for k, v in args.items()]
    else:
        items = [(str(k), v) for k, v in args]
    for name, value in items:
        if not isinstance(value, (str, int, float)):
            raise ValueError(
                f"workload arg {name!r} must be a scalar, got {type(value)}"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class FuzzCase:
    """One generated (config, workload, faults, policy) experiment."""

    seed: int
    index: int
    # Machine configuration (plain JSON-able spellings).
    mesh_width: int
    mesh_height: int
    region_w: int
    region_h: int
    llc: str                     # "shared" | "private"
    mc_placement: str            # "corners" | "edge_middles"
    network: str                 # "analytic" | "wormhole" | "ideal"
    page_bytes: int
    l2_size_bytes: int
    mc_granularity: str          # "page" | "cache_line"
    bank_granularity: str        # "page" | "cache_line"
    dram: str                    # "ddr3" | "ddr4"
    iteration_set_fraction: float
    # Run policy.
    mapping: str                 # "default" | "la"
    trips: int
    cme_accuracy: float
    # Synthetic workload knobs (forwarded to build_fuzz_workload).
    workload: KWPairs = ()
    # Canonical fault specs (empty = healthy machine).
    faults: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", _freeze_workload(self.workload))
        if self.faults:
            object.__setattr__(
                self, "faults", FaultPlan.parse(self.faults).to_specs()
            )
        else:
            object.__setattr__(self, "faults", ())
        if self.llc not in ("shared", "private"):
            raise ValueError(f"unknown llc organization {self.llc!r}")
        if self.dram not in _DRAM:
            raise ValueError(f"unknown dram generation {self.dram!r}")
        if self.mapping not in ("default", "la"):
            raise ValueError(f"fuzz mapping must be default|la, got {self.mapping!r}")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``from_dict`` inverts it exactly."""
        payload: Dict[str, Any] = {"schema": SPEC_SCHEMA}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "workload":
                payload[f.name] = {name: val for name, val in value}
            elif f.name == "faults":
                payload[f.name] = list(value)
            else:
                payload[f.name] = value
        return payload

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys); the case's identity."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzCase":
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unknown fuzz case schema {schema!r}")
        kwargs: Dict[str, Any] = {}
        for f in fields(cls):
            if f.name not in data:
                raise ValueError(f"fuzz case missing field {f.name!r}")
            value = data[f.name]
            if f.name == "faults":
                value = tuple(value)
            kwargs[f.name] = value
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fuzz case JSON must be an object")
        return cls.from_dict(data)

    def case_id(self) -> str:
        """Stable short digest of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def with_updates(self, **changes: Any) -> "FuzzCase":
        """A copy with some fields replaced (the shrinker's edit step)."""
        return replace(self, **changes)

    # -- materialization ---------------------------------------------------
    def build_config(self) -> SystemConfig:
        """The :class:`SystemConfig` this case describes (validated)."""
        return SystemConfig(
            mesh_width=self.mesh_width,
            mesh_height=self.mesh_height,
            region_w=self.region_w,
            region_h=self.region_h,
            mc_placement=MCPlacement(self.mc_placement),
            llc_organization=LLCOrganization(self.llc),
            network_model=NetworkModel(self.network),
            page_bytes=self.page_bytes,
            l2_size_bytes=self.l2_size_bytes,
            mc_granularity=Granularity(self.mc_granularity),
            bank_granularity=Granularity(self.bank_granularity),
            dram=_DRAM[self.dram],
            iteration_set_fraction=self.iteration_set_fraction,
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        """The case's fault plan, or ``None`` for a healthy machine."""
        if not self.faults:
            return None
        return FaultPlan.parse(self.faults)

    def workload_args(self) -> Dict[str, ScalarArg]:
        """The kwargs :data:`WORKLOAD_SPEC` is called with."""
        return {name: value for name, value in self.workload}

    def build_workload(self) -> Workload:
        """Materialize the synthetic workload (same path the executor uses)."""
        from repro.exec.cells import resolve_workload

        return resolve_workload(WORKLOAD_SPEC, self.workload_args())

    def validation_problems(self) -> Tuple[str, ...]:
        """Mesh-dependent legality problems of the fault plan (empty = ok).

        ``build_config`` already rejects illegal machine geometry by
        raising; this covers the cross-field constraint a frozen dataclass
        cannot: fault specs must name resources the configured mesh has.
        """
        plan = self.fault_plan()
        if plan is None:
            return ()
        mesh = self.build_config().build_mesh()
        return tuple(plan.validate_against(mesh))


def num_references(workload: Workload) -> int:
    """Total array references across a workload's loop nests.

    The shrinker's target metric: a minimized engine-divergence repro
    should be a couple of references in one nest, not a stencil.
    """
    return sum(len(nest.references) for nest in workload.program.nests)
