"""Differential fuzzing & metamorphic-invariant harness (``repro fuzz``).

Randomized end-to-end oracle over the simulator's equivalence claims:
seed-deterministic generation of configs, synthetic workloads and fault
plans (:mod:`repro.fuzz.generator`), differential oracles over the
fast/reference engines and the serial/parallel executor
(:mod:`repro.fuzz.oracles`), metamorphic invariants
(:mod:`repro.fuzz.invariants`), greedy shrinking of failures
(:mod:`repro.fuzz.shrinker`) and a replayable JSON corpus
(:mod:`repro.fuzz.corpus`).  See ``docs/fuzzing.md``.
"""

from .corpus import CORPUS_SCHEMA, CorpusEntry, CorpusStore
from .generator import FAULT_PROBABILITY, generate_case, generate_cases
from .invariants import (
    check_fault_aware_latency,
    check_rotation_symmetry,
    check_telemetry_transparency,
)
from .oracles import check_engine_differential, check_sweep_differential
from .runner import CHECK_MAP, CHECKS, REPORT_SCHEMA, resolve_checks, run_fuzz
from .shrinker import DEFAULT_MAX_EVALS, ShrinkResult, shrink
from .spec import SPEC_SCHEMA, WORKLOAD_SPEC, FuzzCase, num_references
from .synth import PATTERNS, build_fuzz_workload

__all__ = [
    "CORPUS_SCHEMA",
    "CHECK_MAP",
    "CHECKS",
    "CorpusEntry",
    "CorpusStore",
    "DEFAULT_MAX_EVALS",
    "FAULT_PROBABILITY",
    "FuzzCase",
    "PATTERNS",
    "REPORT_SCHEMA",
    "SPEC_SCHEMA",
    "ShrinkResult",
    "WORKLOAD_SPEC",
    "build_fuzz_workload",
    "check_engine_differential",
    "check_fault_aware_latency",
    "check_rotation_symmetry",
    "check_sweep_differential",
    "check_telemetry_transparency",
    "generate_case",
    "generate_cases",
    "num_references",
    "resolve_checks",
    "run_fuzz",
    "shrink",
]
