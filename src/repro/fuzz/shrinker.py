"""Greedy spec shrinking: minimize a failing case to a small repro.

Classic delta-debugging-lite: starting from the failing case, try an
ordered list of simplifying edits; whenever an edited case still fails
the *same* check, adopt it and restart the pass.  The first edit is the
"minimal jump" -- everything simplified at once -- so bugs that reproduce
everywhere (the common kind for differential engines) shrink in one
evaluation instead of one per knob.  Every candidate is validated before
evaluation (illegal geometry or a fault plan the shrunken mesh cannot
host is skipped, never run), and the whole search is capped at
``max_evals`` check executions, so shrinking a slow oracle stays bounded.

The check is re-run on the *candidate* only; the shrinker never assumes
monotonicity beyond "still fails => keep".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Set

from .spec import FuzzCase

CheckFn = Callable[[FuzzCase], Optional[str]]

DEFAULT_MAX_EVALS = 60
"""Cap on check executions during one shrink (each may run simulations)."""

_MINIMAL_WORKLOAD = (
    ("compute", 4),
    ("elem_bytes", 32),
    ("n", 256),
    ("nests", 1),
    ("pattern", "stream"),
    ("refs", 1),
)


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink: the smallest still-failing case found."""

    case: FuzzCase
    detail: str
    evals: int
    improved: bool


def _minimal_jump(case: FuzzCase) -> FuzzCase:
    """Everything simplified at once (drops faults; keeps seed/policy)."""
    return case.with_updates(
        mesh_width=4, mesh_height=4, region_w=2, region_h=2,
        llc="shared", mc_placement="corners", network="analytic",
        page_bytes=2048, l2_size_bytes=16384,
        mc_granularity="page", bank_granularity="page", dram="ddr3",
        iteration_set_fraction=0.01, mapping="default", trips=3,
        cme_accuracy=0.85, workload=_MINIMAL_WORKLOAD, faults=(),
    )


def _workload_edits(case: FuzzCase) -> Iterator[FuzzCase]:
    args = case.workload_args()
    pattern = args.get("pattern", "stream")
    if int(args.get("nests", 1)) > 1:
        yield case.with_updates(workload={**args, "nests": 1})
    if int(args.get("refs", 1)) > 1:
        yield case.with_updates(workload={**args, "refs": 1})
    if pattern != "stream":
        yield case.with_updates(workload=_MINIMAL_WORKLOAD)
    n = int(args.get("n", 256))
    if pattern in ("stream", "gather", "spmv", "bucketed") and n > 256:
        yield case.with_updates(workload={**args, "n": max(256, n // 2)})
    if pattern in ("stencil2d", "mxm") and n > 16:
        yield case.with_updates(workload={**args, "n": max(16, n // 2)})
    if int(args.get("targets", 256)) > 256:
        yield case.with_updates(workload={**args, "targets": 256})
    if int(args.get("elem_bytes", 32)) != 32:
        yield case.with_updates(workload={**args, "elem_bytes": 32})


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Simplifying edits, most aggressive first."""
    yield _minimal_jump(case)
    if case.faults or case.mapping != "default":
        # Same jump but preserving the fault plan and mapping: the right
        # first move for fault/mapping-conditioned failures, where the
        # full jump would make the check vacuously pass.
        yield _minimal_jump(case).with_updates(
            faults=case.faults, mapping=case.mapping
        )
    if case.faults:
        yield case.with_updates(faults=())
    if case.mapping != "default":
        yield case.with_updates(mapping="default")
    if case.trips != 3:
        yield case.with_updates(trips=3)
    yield from _workload_edits(case)
    if (case.mesh_width, case.mesh_height) != (4, 4):
        # Shrink the mesh; 2x2 regions tile every supported size.  Fault
        # specs indexing the larger mesh may become illegal -- validation
        # in shrink() skips those candidates.
        next_w = 4 if case.mesh_width <= 6 else 6
        next_h = 4 if case.mesh_height <= 6 else 6
        yield case.with_updates(
            mesh_width=next_w, mesh_height=next_h, region_w=2, region_h=2
        )
    if (case.region_w, case.region_h) != (2, 2) and (
        case.mesh_width % 2 == 0 and case.mesh_height % 2 == 0
    ):
        yield case.with_updates(region_w=2, region_h=2)
    if case.network != "analytic":
        yield case.with_updates(network="analytic")
    if case.llc != "shared":
        yield case.with_updates(llc="shared")
    if case.mc_placement != "corners":
        yield case.with_updates(mc_placement="corners")
    if case.page_bytes != 2048:
        yield case.with_updates(page_bytes=2048)
    if case.l2_size_bytes != 16384:
        yield case.with_updates(l2_size_bytes=16384)
    if case.mc_granularity != "page":
        yield case.with_updates(mc_granularity="page")
    if case.bank_granularity != "page":
        yield case.with_updates(bank_granularity="page")
    if case.dram != "ddr3":
        yield case.with_updates(dram="ddr3")
    if case.iteration_set_fraction != 0.01:
        yield case.with_updates(iteration_set_fraction=0.01)
    if case.cme_accuracy != 0.85:
        yield case.with_updates(cme_accuracy=0.85)


def _is_valid(case: FuzzCase) -> bool:
    """Candidate legality: buildable config + mesh-compatible faults."""
    try:
        case.build_config()
        return not case.validation_problems()
    except ValueError:
        return False


def shrink(
    case: FuzzCase,
    check: CheckFn,
    detail: str,
    max_evals: int = DEFAULT_MAX_EVALS,
) -> ShrinkResult:
    """Minimize ``case`` while ``check`` keeps failing.

    ``detail`` is the original failure message (kept when no edit helps).
    Returns the smallest still-failing case found, its (latest) failure
    detail, and how many check evaluations the search spent.
    """
    current = case
    current_detail = detail
    evals = 0
    seen: Set[str] = {case.to_json()}
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            key = candidate.to_json()
            if key in seen:
                continue
            seen.add(key)
            if not _is_valid(candidate):
                continue
            try:
                evals += 1
                candidate_detail = check(candidate)
            except ValueError:
                continue  # the edit produced an unrunnable case: skip it
            if candidate_detail is not None:
                current = candidate
                current_detail = candidate_detail
                progress = True
                break
    return ShrinkResult(
        case=current,
        detail=current_detail,
        evals=evals,
        improved=current is not case,
    )
