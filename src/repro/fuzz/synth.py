"""Synthetic fuzz workloads: parameterized access-pattern archetypes.

:func:`build_fuzz_workload` is the single ``module:factory`` entry point
fuzz cases (and their sweep cells) resolve -- it must stay a module-level
function with scalar-only kwargs so cells stay picklable and workers can
rebuild the workload by import (see :func:`repro.exec.cells.resolve_workload`).

Each pattern reproduces one access-pattern class from the bundled suite
(:mod:`repro.workloads`), shrunk to fuzzing size: dense streaming, 2D
stencils, matrix products, clustered neighbor-list gathers, banded SpMV
walks and bucketed scatters.  Index-array contents derive only from the
program's ``seed`` (the harness seeds ``numpy.random.default_rng(seed)``
at instantiation), so a case replays byte-identically anywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.ir.arrays import ArrayDecl, declare
from repro.ir.builder import nest_builder
from repro.ir.loops import LoopNest, Program
from repro.ir.refs import gather, scatter
from repro.ir.symbolic import Idx, Param
from repro.workloads.base import (
    Workload,
    banded_columns,
    bucketed_keys,
    clustered_indices,
)

I, J = Idx("i"), Idx("j")
N, P, A = Param("N"), Param("P"), Param("A")

PATTERNS: Tuple[str, ...] = (
    "stream", "stencil2d", "mxm", "gather", "spmv", "bucketed",
)
"""Recognized access-pattern archetypes, regular first."""

MIN_N = 64
"""Floor the shrinker may not go below (runs must stay non-trivial)."""

IndexBuilder = Callable[[Mapping[str, int], np.random.Generator], np.ndarray]


def build_fuzz_workload(
    pattern: str,
    n: int,
    elem_bytes: int = 32,
    refs: int = 1,
    nests: int = 1,
    compute: int = 4,
    targets: int = 256,
    seed: int = 7,
) -> Workload:
    """Build one synthetic workload.

    ``pattern`` selects the archetype; ``n`` is its primary extent
    (iterations for 1D patterns, side length for 2D ones); ``refs`` adds
    extra read references per iteration (>= 1); ``nests`` duplicates the
    body as a second coupled nest (1 or 2); ``targets`` sizes the
    indirection target arrays of the irregular patterns; ``seed`` fixes
    index-array contents.  All arguments are scalars on purpose: this
    factory is resolved by name across process boundaries.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown fuzz pattern {pattern!r}; one of {PATTERNS}")
    if n < MIN_N and pattern in ("stream", "gather", "spmv", "bucketed"):
        raise ValueError(f"pattern {pattern!r} needs n >= {MIN_N}, got {n}")
    if n < 8 and pattern in ("stencil2d", "mxm"):
        raise ValueError(f"pattern {pattern!r} needs n >= 8, got {n}")
    refs = max(1, min(int(refs), 4))
    nests = max(1, min(int(nests), 2))
    compute = max(1, min(int(compute), 8))
    targets = max(MIN_N, int(targets))
    builder = _BUILDERS[pattern]
    program = builder(int(n), int(elem_bytes), refs, nests, compute,
                      targets, int(seed))
    return Workload(
        name=f"fuzz-{pattern}",
        program=program,
        regular=program.is_regular,
        trips=3,
        description=f"synthetic fuzz workload ({pattern}, n={n})",
    )


def _stream(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
            targets: int, seed: int) -> Program:
    """1D streaming: reads march ahead of a streamed write."""
    a = declare("A", N + refs, elem_bytes=elem_bytes)
    b = declare("B", N, elem_bytes=elem_bytes)
    body = nest_builder("fuzz.stream").loop("i", 0, N)
    for r in range(refs):
        body = body.reads(a(I + r))
    first = body.writes(b(I)).compute(compute).build()
    built: List[LoopNest] = [first]
    if nests > 1:
        built.append(
            nest_builder("fuzz.stream2")
            .loop("i", 0, N)
            .reads(b(I))
            .writes(a(I))
            .compute(compute)
            .build()
        )
    return Program("fuzz-stream", tuple(built), default_params={"N": n})


def _stencil2d(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
               targets: int, seed: int) -> Program:
    """5-point 2D Jacobi sweep (plus the reverse half-step)."""
    a = declare("A", N, N, elem_bytes=elem_bytes)
    b = declare("B", N, N, elem_bytes=elem_bytes)

    def sweep(name: str, src: ArrayDecl, dst: ArrayDecl) -> LoopNest:
        return (
            nest_builder(name)
            .loop("i", 1, N - 1)
            .loop("j", 1, N - 1)
            .reads(src(I, J), src(I - 1, J), src(I + 1, J),
                   src(I, J - 1), src(I, J + 1))
            .writes(dst(I, J))
            .compute(compute)
            .build()
        )

    built: List[LoopNest] = [sweep("fuzz.stencil.fwd", a, b)]
    if nests > 1:
        built.append(sweep("fuzz.stencil.bwd", b, a))
    return Program("fuzz-stencil2d", tuple(built), default_params={"N": n})


def _mxm(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
         targets: int, seed: int) -> Program:
    """Dense product: row-streamed reads against a column-strided operand."""
    a = declare("A", N, N, elem_bytes=elem_bytes)
    b = declare("B", N, N, elem_bytes=elem_bytes)
    c = declare("C", N, N, elem_bytes=elem_bytes)
    product = (
        nest_builder("fuzz.mxm")
        .loop("i", 0, N)
        .loop("j", 0, N)
        .reads(a(I, J), b(J, I))
        .writes(c(I, J))
        .compute(compute)
        .build()
    )
    built: List[LoopNest] = [product]
    if nests > 1:
        built.append(
            nest_builder("fuzz.mxm.post")
            .loop("i", 0, N)
            .loop("j", 0, N)
            .reads(c(I, J))
            .writes(a(I, J))
            .compute(compute)
            .build()
        )
    return Program("fuzz-mxm", tuple(built), default_params={"N": n})


def _gather(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
            targets: int, seed: int) -> Program:
    """Clustered neighbor-list gathers (MD-style) into a streamed buffer."""
    pos = declare("POS", A, elem_bytes=elem_bytes)
    buf = declare("BUF", P, elem_bytes=32)
    index_names = [f"IND{r}" for r in range(refs)]
    indexes = [declare(name, P, elem_bytes=8) for name in index_names]
    body = nest_builder("fuzz.gather").loop("i", 0, P)
    for ind in indexes:
        body = body.reads(ind(I)).accesses(gather(pos, ind, I))
    first = body.writes(buf(I)).compute(compute).build()
    built: List[LoopNest] = [first]
    if nests > 1:
        built.append(
            nest_builder("fuzz.gather.update")
            .loop("i", 0, A)
            .reads(pos(I))
            .writes(pos(I))
            .compute(compute)
            .build()
        )

    def make_builder(radius: int) -> IndexBuilder:
        def build(params: Mapping[str, int],
                  rng: np.random.Generator) -> np.ndarray:
            return clustered_indices(
                params["P"], params["A"], radius, rng, revisit=0.3
            )
        return build

    builders: Dict[str, IndexBuilder] = {
        name: make_builder(8 + 8 * position)
        for position, name in enumerate(index_names)
    }
    return Program(
        "fuzz-gather",
        tuple(built),
        default_params={"P": n, "A": targets},
        index_array_builders=builders,
        seed=seed,
    )


def _spmv(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
          targets: int, seed: int) -> Program:
    """Banded sparse-matrix walk: gather x, scatter y along column indices."""
    x = declare("X", A, elem_bytes=elem_bytes)
    y = declare("Y", A, elem_bytes=elem_bytes)
    col = declare("COL", P, elem_bytes=8)
    row = declare("ROW", P, elem_bytes=8)
    walk = (
        nest_builder("fuzz.spmv")
        .loop("i", 0, P)
        .reads(col(I))
        .accesses(gather(x, col, I), scatter(y, row, I))
        .compute(compute)
        .build()
    )

    def build_col(params: Mapping[str, int],
                  rng: np.random.Generator) -> np.ndarray:
        rows = max(1, params["P"] // 4)
        return banded_columns(rows, 4, 16, params["A"], rng)

    def build_row(params: Mapping[str, int],
                  rng: np.random.Generator) -> np.ndarray:
        rows = max(1, params["P"] // 4)
        return np.repeat(
            (np.arange(rows, dtype=np.int64) * params["A"]) // rows, 4
        )

    return Program(
        "fuzz-spmv",
        (walk,),
        default_params={"P": (n // 4) * 4, "A": targets},
        index_array_builders={"COL": build_col, "ROW": build_row},
        seed=seed,
    )


def _bucketed(n: int, elem_bytes: int, refs: int, nests: int, compute: int,
              targets: int, seed: int) -> Program:
    """Radix-style pass: bucketed scatter with partial locality."""
    out = declare("OUT", A, elem_bytes=elem_bytes)
    keys = declare("KEYS", P, elem_bytes=8)
    src = declare("SRC", P, elem_bytes=elem_bytes)
    pass_ = (
        nest_builder("fuzz.bucketed")
        .loop("i", 0, P)
        .reads(src(I), keys(I))
        .accesses(scatter(out, keys, I))
        .compute(compute)
        .build()
    )

    def build_keys(params: Mapping[str, int],
                   rng: np.random.Generator) -> np.ndarray:
        return bucketed_keys(params["P"], 16, params["A"], rng)

    return Program(
        "fuzz-bucketed",
        (pass_,),
        default_params={"P": n, "A": targets},
        index_array_builders={"KEYS": build_keys},
        seed=seed,
    )


_BUILDERS = {
    "stream": _stream,
    "stencil2d": _stencil2d,
    "mxm": _mxm,
    "gather": _gather,
    "spmv": _spmv,
    "bucketed": _bucketed,
}
