"""Replayable corpus of minimized failing cases.

Every divergence the fuzzer finds (after shrinking) is filed as one JSON
document under the case's content-addressed id, so a failure found on any
machine replays anywhere: ``tests/fuzz/test_corpus_replay.py`` re-runs
every checked-in entry through its original check on every tier-1 run.
Like the lint baseline, the checked-in corpus is *empty on a healthy
HEAD* -- entries are added when a bug ships, and deleted when it is
fixed and covered by a regular regression test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

from .spec import FuzzCase

CORPUS_SCHEMA = "repro.fuzz.corpus/1"


@dataclass(frozen=True)
class CorpusEntry:
    """One minimized repro: the case, the check it fails, the detail."""

    case: FuzzCase
    check: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA,
            "case": self.case.to_dict(),
            "check": self.check,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        schema = data.get("schema")
        if schema != CORPUS_SCHEMA:
            raise ValueError(f"unknown corpus schema {schema!r}")
        return cls(
            case=FuzzCase.from_dict(data["case"]),
            check=str(data["check"]),
            detail=str(data.get("detail", "")),
        )


class CorpusStore:
    """Directory of ``<case_id>.json`` corpus entries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, entry: CorpusEntry) -> Path:
        return self.root / f"{entry.case.case_id()}.json"

    def save(self, entry: CorpusEntry) -> Path:
        """Write one entry (idempotent: the name is the case digest)."""
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path_for(entry)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    def load(self) -> List[CorpusEntry]:
        """All entries, in sorted-filename (= case-digest) order."""
        if not self.root.is_dir():
            return []
        entries: List[CorpusEntry] = []
        for path in sorted(self.root.glob("*.json")):
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entries.append(CorpusEntry.from_dict(data))
        return entries

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return len(list(self.root.glob("*.json")))
