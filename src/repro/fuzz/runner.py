"""The fuzz loop: generate -> check -> shrink -> file.

``run_fuzz`` drives the whole pipeline and returns a JSON-ready report.
The report is a pure function of ``(seed, iterations, checks)`` -- it
carries no wall-clock times, hostnames or pids -- so two runs of the same
seed and iteration count produce byte-identical documents (the CI smoke
job and the acceptance criteria diff them).  A ``time_budget`` bounds the
*number of cases actually run* (recorded in the report) without leaking
elapsed time into it.

Per case, checks run in registry order and stop at the first failure:
one divergence per case keeps reports small and shrinking focused; the
next case still runs, so one bug does not mask another family.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .corpus import CorpusEntry, CorpusStore
from .generator import generate_case
from .invariants import (
    check_fault_aware_latency,
    check_rotation_symmetry,
    check_telemetry_transparency,
)
from .oracles import check_engine_differential, check_sweep_differential
from .shrinker import DEFAULT_MAX_EVALS, shrink
from .spec import FuzzCase

REPORT_SCHEMA = "repro.fuzz/1"

CheckFn = Callable[[FuzzCase], Optional[str]]

CHECKS: Tuple[Tuple[str, CheckFn], ...] = (
    ("engine-differential", check_engine_differential),
    ("sweep-differential", check_sweep_differential),
    ("telemetry-transparency", check_telemetry_transparency),
    ("mesh-rotation-symmetry", check_rotation_symmetry),
    ("fault-aware-latency", check_fault_aware_latency),
)
"""The full registry, differential oracles first (ordered, so reports and
stop-at-first-failure behaviour are deterministic)."""

CHECK_MAP: Dict[str, CheckFn] = {name: fn for name, fn in CHECKS}


def resolve_checks(
    names: Optional[Sequence[str]],
) -> Tuple[Tuple[str, CheckFn], ...]:
    """Subset the registry by name, preserving registry order."""
    if names is None:
        return CHECKS
    wanted = list(names)
    unknown = [name for name in wanted if name not in CHECK_MAP]
    if unknown:
        known = ", ".join(name for name, _ in CHECKS)
        raise ValueError(f"unknown check(s) {unknown}; known: {known}")
    return tuple(
        (name, fn) for name, fn in CHECKS if name in wanted
    )


def run_fuzz(
    seed: int = 7,
    iterations: int = 25,
    time_budget: Optional[float] = None,
    shrink_failures: bool = True,
    corpus_dir: Optional[str] = None,
    checks: Optional[Sequence[str]] = None,
    max_shrink_evals: int = DEFAULT_MAX_EVALS,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the differential fuzzer; returns the ``repro.fuzz/1`` report.

    ``time_budget`` (seconds) stops generating new cases once exceeded --
    the case being checked always completes.  ``corpus_dir`` files every
    (shrunk) divergence as a replayable corpus entry.  ``checks`` selects
    a named subset of the registry (default: all).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    active = resolve_checks(checks)
    store = CorpusStore(corpus_dir) if corpus_dir else None
    started = time.monotonic()
    cases: List[Dict[str, Any]] = []
    divergences: List[Dict[str, Any]] = []
    budget_exhausted = False
    for index in range(iterations):
        if time_budget is not None and (
            time.monotonic() - started >= time_budget
        ):
            budget_exhausted = True
            break
        case = generate_case(seed, index)
        if progress is not None:
            progress(
                f"case {index}: {case.case_id()} "
                f"({dict(case.workload).get('pattern')}, "
                f"{case.mesh_width}x{case.mesh_height}, "
                f"{len(case.faults)} fault(s))"
            )
        record: Dict[str, Any] = {
            "index": index,
            "case_id": case.case_id(),
            "result": "ok",
        }
        for name, check in active:
            detail = check(case)
            if detail is None:
                continue
            record["result"] = "divergence"
            record["check"] = name
            divergence: Dict[str, Any] = {
                "index": index,
                "check": name,
                "detail": detail,
                "case": case.to_dict(),
                "case_id": case.case_id(),
            }
            if progress is not None:
                progress(f"case {index}: DIVERGENCE in {name}: {detail}")
            final_case, final_detail = case, detail
            if shrink_failures:
                result = shrink(case, check, detail,
                                max_evals=max_shrink_evals)
                final_case, final_detail = result.case, result.detail
                divergence["shrunk"] = {
                    "case": result.case.to_dict(),
                    "case_id": result.case.case_id(),
                    "detail": result.detail,
                    "evals": result.evals,
                    "improved": result.improved,
                }
                if progress is not None:
                    progress(
                        f"case {index}: shrunk to {result.case.case_id()} "
                        f"in {result.evals} eval(s)"
                    )
            if store is not None:
                entry = CorpusEntry(
                    case=final_case, check=name, detail=final_detail
                )
                path = store.save(entry)
                divergence["corpus_path"] = path.name
            divergences.append(divergence)
            break  # one divergence per case; move on to the next case
        cases.append(record)
    return {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "iterations_requested": iterations,
        "cases_run": len(cases),
        "budget_exhausted": budget_exhausted,
        "checks": [name for name, _ in active],
        "shrink": shrink_failures,
        "cases": cases,
        "divergences": divergences,
        "ok": not divergences,
    }
