"""Differential oracles: two executions that may not disagree.

Each oracle runs one generated case twice through paths the repo claims
are behaviour-identical and compares the complete observable outcome:

* ``engine-differential`` -- the batched fast engine vs the scalar
  reference engine, through the full experiment harness, comparing
  field-identical :class:`~repro.sim.stats.RunStats`, spatial traffic
  accumulators, latency/hop histograms, and the decisions-level event
  stream.
* ``sweep-differential`` -- the same two cells through the sharded sweep
  executor, serial (``workers=1``) vs parallel (``workers=2``), comparing
  the JSON payload maps; the fast/reference cell payloads must also match
  *each other*, which re-checks engine equivalence through the executor's
  serialization path.

An oracle returns ``None`` when the case passes and a short human-readable
detail string naming the first disagreement when it fails.  Oracles are
pure functions of the case: no global state, so the shrinker can replay
them freely.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from repro.exec.cells import SweepCell
from repro.exec.executor import run_sweep
from repro.experiments.harness import run_workload
from repro.obs import EventStream, Telemetry
from repro.sim.config import SystemConfig

from .spec import WORKLOAD_SPEC, FuzzCase


def _run_observed(case: FuzzCase, config: SystemConfig) -> Dict[str, Any]:
    """One fully-instrumented harness run -> JSON-comparable outcome."""
    telemetry = Telemetry(events=EventStream(level="decisions"))
    result = run_workload(
        case.build_workload(),
        config,
        mapping=case.mapping,
        trips=case.trips,
        cme_accuracy=case.cme_accuracy,
        seed=case.seed,
        telemetry=telemetry,
        fault_plan=case.fault_plan(),
        fault_aware=True,
    )
    histograms = {
        name: dict(sorted(hist._counts.items()))
        for name, hist in sorted(telemetry.histograms.items())
    }
    return {
        "stats": dataclasses.asdict(result.stats),
        "moved_fraction": result.moved_fraction,
        "spatial": (
            telemetry.spatial.as_dict() if telemetry.spatial is not None
            else None
        ),
        "histograms": histograms,
        "events": list(telemetry.events.events),
    }


def _first_difference(
    fast: Dict[str, Any], reference: Dict[str, Any]
) -> Optional[str]:
    """Name the first differing section (and stats field) of two outcomes."""
    for section in ("stats", "moved_fraction", "spatial", "histograms",
                    "events"):
        a, b = fast[section], reference[section]
        if a == b:
            continue
        if section == "stats":
            diffs = [
                f"{name}: fast={a[name]} reference={b[name]}"
                for name in sorted(a)
                if a[name] != b[name]
            ]
            return f"stats diverge ({'; '.join(diffs)})"
        return f"{section} diverge"
    return None


def check_engine_differential(case: FuzzCase) -> Optional[str]:
    """Fast vs reference engine through the experiment harness."""
    config = case.build_config()
    fast = _run_observed(case, config.fast_engine())
    reference = _run_observed(case, config.reference_engine())
    return _first_difference(fast, reference)


def _cells(case: FuzzCase) -> List[SweepCell]:
    config = case.build_config()
    return [
        SweepCell(
            workload=WORKLOAD_SPEC,
            config=engine_config,
            mapping=case.mapping,
            trips=case.trips,
            cme_accuracy=case.cme_accuracy,
            collect_obs=True,
            seed=case.seed,
            workload_args=tuple(case.workload),
            faults=case.faults,
            fault_aware=True,
        )
        for engine_config in (config.fast_engine(), config.reference_engine())
    ]


def check_sweep_differential(case: FuzzCase) -> Optional[str]:
    """Serial vs parallel sweep execution, and fast vs reference payloads."""
    cells = _cells(case)
    serial = run_sweep(cells, workers=1).payloads()
    parallel = run_sweep(cells, workers=2).payloads()
    if serial != parallel:
        keys = [key for key in sorted(serial) if serial[key] != parallel.get(key)]
        return (
            "serial and parallel sweep payloads diverge on cell(s) "
            + ", ".join(keys)
        )
    fast_payload, reference_payload = (serial[cell.key()] for cell in cells)
    if fast_payload != reference_payload:
        fast_stats = fast_payload["stats"]
        reference_stats = reference_payload["stats"]
        diffs = [
            name for name in sorted(fast_stats)
            if fast_stats[name] != reference_stats[name]
        ]
        extra = f" (stats fields: {', '.join(diffs)})" if diffs else ""
        return "fast and reference cell payloads diverge" + extra
    return None


def stable_json(payload: Any) -> str:
    """Canonical JSON used whenever an oracle serializes for comparison."""
    return json.dumps(payload, sort_keys=True)
