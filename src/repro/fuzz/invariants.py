"""Metamorphic invariants: properties every case must satisfy.

Unlike the differential oracles (two executions compared byte-for-byte),
a metamorphic check transforms the case and asserts a known relation
between the original and transformed outcomes:

* ``mesh-rotation-symmetry`` -- rotating the mesh 180 degrees
  (``rho(x, y) = (W-1-x, H-1-y)``) preserves every node-pair Manhattan
  distance, and -- for corner MC placement, which rho maps onto itself
  with the MC permutation 0<->2, 1<->3 -- every traffic-weighted
  MC-distance cost the mapper optimizes.  Edge-middle placement is *not*
  rho-invariant on even meshes (``rho(W//2, 0)`` is not an MC position),
  so the MC half of the check applies to corners only.
* ``fault-aware-latency`` -- on a degraded machine, the fault-aware
  location-aware mapping must not produce a worse average NoC latency
  than the fault-oblivious one (the PR 6 selection theorem: candidates
  only deviate from the oblivious choice under a predicted-win margin).
* ``telemetry-transparency`` -- attaching a full-verbosity telemetry hub
  must not change a single RunStats field: observation may never perturb
  the simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.experiments.harness import run_workload
from repro.obs import EventStream, Telemetry

from .spec import FuzzCase

_ROTATED_MC = (2, 3, 0, 1)
"""Corner MC index permutation under a 180-degree rotation
(top-left <-> bottom-right, top-right <-> bottom-left)."""

FAULT_LATENCY_SLACK = 1e-6
"""Relative tolerance on the fault-aware <= fault-oblivious comparison
(float noise only; the selection margin itself guarantees the inequality)."""


def check_rotation_symmetry(case: FuzzCase) -> Optional[str]:
    """180-degree mesh rotation preserves distances and mapping leg costs."""
    mesh = case.build_config().build_mesh()
    width, height = mesh.width, mesh.height

    def rotated(node: int) -> int:
        x, y = mesh.coord(node)
        return mesh.node_id((width - 1 - x, height - 1 - y))

    for a in range(mesh.num_nodes):
        for b in range(a + 1, mesh.num_nodes):
            direct = mesh.node_distance(a, b)
            image = mesh.node_distance(rotated(a), rotated(b))
            if direct != image:
                return (
                    f"rotation broke node-pair distance: d({a},{b})={direct} "
                    f"but d(rho({a}),rho({b}))={image}"
                )

    if case.mc_placement != "corners":
        return None
    # Deterministic per-node traffic weights over the 4 MCs; the weighted
    # leg cost (what Mapper._leg_cost minimizes) must be rotation-invariant
    # once the MC indices are permuted along with the nodes.
    for node in range(mesh.num_nodes):
        weights = [1 + ((node + mc) % 5) for mc in range(4)]
        cost = sum(
            weights[mc] * mesh.distance_to_mc(node, mc) for mc in range(4)
        )
        image_cost = sum(
            weights[mc] * mesh.distance_to_mc(rotated(node), _ROTATED_MC[mc])
            for mc in range(4)
        )
        if cost != image_cost:
            return (
                f"rotation broke MC leg cost at node {node}: "
                f"{cost} vs {image_cost}"
            )
    return None


def check_fault_aware_latency(case: FuzzCase) -> Optional[str]:
    """Fault-aware mapping never worse than oblivious on NoC latency.

    Vacuously passes on healthy machines and on the ideal network (which
    has no latency to compare).
    """
    plan = case.fault_plan()
    if plan is None or case.network == "ideal":
        return None
    config = case.build_config()
    workload = case.build_workload()

    def latency(fault_aware: bool) -> float:
        result = run_workload(
            workload, config, mapping="la", trips=case.trips,
            cme_accuracy=case.cme_accuracy, seed=case.seed,
            fault_plan=plan, fault_aware=fault_aware,
        )
        return result.stats.avg_network_latency

    aware = latency(True)
    oblivious = latency(False)
    if aware > oblivious * (1.0 + FAULT_LATENCY_SLACK):
        return (
            f"fault-aware mapping degraded NoC latency: aware={aware:.6f} "
            f"oblivious={oblivious:.6f} under plan {list(case.faults)}"
        )
    return None


def check_telemetry_transparency(case: FuzzCase) -> Optional[str]:
    """A debug-level telemetry hub must not change any RunStats field."""
    config = case.build_config()
    workload = case.build_workload()

    def stats(telemetry: Optional[Telemetry]) -> dict:
        result = run_workload(
            workload, config, mapping=case.mapping, trips=case.trips,
            cme_accuracy=case.cme_accuracy, seed=case.seed,
            telemetry=telemetry, fault_plan=case.fault_plan(),
            fault_aware=True,
        )
        return dataclasses.asdict(result.stats)

    plain = stats(None)
    observed = stats(Telemetry(events=EventStream(level="debug")))
    if plain != observed:
        diffs = [
            f"{name}: plain={plain[name]} observed={observed[name]}"
            for name in sorted(plain)
            if plain[name] != observed[name]
        ]
        return "telemetry changed stats (" + "; ".join(diffs) + ")"
    return None
