"""Run manifests: what exactly produced a set of numbers.

A manifest pins a run to its inputs (config hash, seed, workload, mapping,
scale), its software (package version, python, platform) and its cost
(wall/phase seconds), so every ``RunStats`` or benchmark JSON record can
answer "what produced this?" months later.

``config_hash`` is a stable digest of the *semantic* configuration: the
dataclass is flattened to sorted JSON with enums and nested dataclasses
normalized, so two equal configs hash equal across processes and python
versions, and any field change (even a default) changes the hash.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import platform
import socket
import time
from typing import Any, Dict, Optional


def _normalize(value: Any) -> Any:
    """JSON-ready, deterministic form of config field values."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _normalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config: Any) -> Dict[str, Any]:
    """The normalized config dict that :func:`config_hash` digests."""
    return _normalize(config)


def config_hash(config: Any) -> str:
    """Short stable hash of a (dataclass) configuration."""
    payload = json.dumps(config_digest(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def sweep_cache_key(config: Any, **identity: Any) -> str:
    """Content-addressed key of one sweep cell's result.

    Extends :func:`config_hash` with the rest of a cell's identity --
    workload spec, mapping, scale, trips, estimator accuracy, the derived
    seed, plus the executor's cache schema and pipeline code versions --
    normalized exactly like config fields, so any semantic change to any
    ingredient produces a different key (and therefore a cache miss).
    The on-disk result cache (:mod:`repro.exec.cache`) files entries under
    this digest.
    """
    material = {"config": config_digest(config)}
    for name, value in identity.items():
        material[name] = _normalize(value)
    payload = json.dumps(material, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "unknown"


def build_manifest(
    config: Any,
    seed: Optional[int] = None,
    workload: Optional[str] = None,
    mapping: Optional[str] = None,
    scale: Optional[float] = None,
    wall_seconds: Optional[float] = None,
    phase_seconds: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one run's manifest as a JSON-ready dict."""
    manifest: Dict[str, Any] = {
        "config_hash": config_hash(config),
        "seed": seed,
        "workload": workload,
        "mapping": mapping,
        "scale": scale,
        "version": package_version(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": socket.gethostname(),
        # repro-lint: allow[DET101] reason=manifest metadata; config_hash excludes it
        "created_unix": round(time.time(), 3),
    }
    if wall_seconds is not None:
        manifest["wall_seconds"] = round(wall_seconds, 6)
    if phase_seconds:
        manifest["phase_seconds"] = {
            name: round(seconds, 6)
            for name, seconds in sorted(phase_seconds.items())
        }
    if extra:
        manifest.update(extra)
    return manifest
