"""Spatial accumulators: *where* on the mesh traffic went.

One :class:`SpatialAccumulators` instance holds per-tile / per-LLC-bank /
per-MC / per-link counters for one machine.  Two recording styles feed it:

* **live streams** -- the execution engine bins each chunk's home banks
  with one vectorized ``np.bincount`` (:meth:`record_bank_touches`), and
  the network adds each packet's flits to the links it crosses
  (:meth:`record_link`).  Neither forces the batched fast path back to a
  scalar walk, unlike the per-access :attr:`~repro.sim.machine.Manycore.
  observer` callback.
* **component snapshots** -- per-node L1, per-bank LLC, per-MC and DRAM
  counters already maintained by the components are copied in by
  :meth:`~repro.sim.machine.Manycore.collect_spatial` at read time.

Both engine modes ("fast" and "reference") must leave field-identical
contents behind; ``tests/sim/test_engine_equivalence.py`` enforces it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Link = Tuple[int, int]


class SpatialAccumulators:
    """Per-location traffic counters of one machine."""

    def __init__(self, num_nodes: int, num_mcs: int):
        if num_nodes < 1 or num_mcs < 1:
            raise ValueError("need at least one node and one MC")
        self.num_nodes = num_nodes
        self.num_mcs = num_mcs
        # Live stream accumulators (engine / network recorded).
        self.bank_touches = np.zeros(num_nodes, dtype=np.int64)
        """References homed at each LLC bank (hits and misses alike)."""
        self.link_flits: Dict[Link, int] = {}
        """Flits carried per directed mesh link."""
        # Component snapshots (refreshed by Manycore.collect_spatial).
        self.tile_accesses = np.zeros(num_nodes, dtype=np.int64)
        """Memory references issued by the core at each tile (== L1 accesses)."""
        self.tile_l1_hits = np.zeros(num_nodes, dtype=np.int64)
        self.bank_requests = np.zeros(num_nodes, dtype=np.int64)
        """L1-miss requests arriving at each LLC bank."""
        self.bank_hits = np.zeros(num_nodes, dtype=np.int64)
        self.mc_requests = np.zeros(num_mcs, dtype=np.int64)
        self.mc_queue_delay = np.zeros(num_mcs, dtype=np.int64)
        """Cumulative queueing cycles per MC (queue-pressure heatmap)."""

    # -- live recording --------------------------------------------------
    def record_bank_touches(self, banks: np.ndarray) -> None:
        """Bin one batched stream of home-bank indices (vectorized)."""
        if len(banks) == 0:
            return
        self.bank_touches += np.bincount(banks, minlength=self.num_nodes)

    def record_link(self, link: Link, flits: int) -> None:
        self.link_flits[link] = self.link_flits.get(link, 0) + flits

    # -- derived views ---------------------------------------------------
    @property
    def tile_l1_misses(self) -> np.ndarray:
        return self.tile_accesses - self.tile_l1_hits

    def link_matrix(self) -> List[Tuple[Link, int]]:
        """Links sorted by descending flit count."""
        return sorted(self.link_flits.items(), key=lambda kv: (-kv[1], kv[0]))

    def node_link_load(self) -> np.ndarray:
        """Flits leaving each node (a per-tile proxy for link pressure)."""
        load = np.zeros(self.num_nodes, dtype=np.int64)
        for (src, _dst), flits in self.link_flits.items():
            load[src] += flits
        return load

    # -- invariants ------------------------------------------------------
    def reconcile(self, stats) -> List[str]:
        """Cross-check accumulator totals against a :class:`RunStats`.

        Returns human-readable violation strings (empty == consistent).
        Used as an always-on invariant check in debug runs: the telemetry
        layer must *re-derive* the scalar stats, never disagree with them.
        """
        checks = [
            ("tile accesses == L1 accesses",
             int(self.tile_accesses.sum()), stats.l1_accesses),
            ("tile L1 hits == L1 hits",
             int(self.tile_l1_hits.sum()), stats.l1_hits),
            ("L1 hits + misses == accesses",
             int(self.tile_l1_hits.sum() + self.tile_l1_misses.sum()),
             stats.l1_accesses),
            ("bank requests == LLC accesses",
             int(self.bank_requests.sum()), stats.llc_accesses),
            ("bank hits == LLC hits",
             int(self.bank_hits.sum()), stats.llc_hits),
            ("per-MC requests sum to LLC misses",
             int(self.mc_requests.sum()),
             stats.llc_accesses - stats.llc_hits),
            ("per-MC requests == DRAM accesses",
             int(self.mc_requests.sum()), stats.dram_accesses),
        ]
        if self.bank_touches.any():
            checks.append(
                ("bank touches == L1 accesses",
                 int(self.bank_touches.sum()), stats.l1_accesses)
            )
        return [
            f"{label}: {lhs} != {rhs}"
            for label, lhs, rhs in checks
            if lhs != rhs
        ]

    # -- serialization / comparison --------------------------------------
    def as_dict(self) -> dict:
        return {
            "tile_accesses": self.tile_accesses.tolist(),
            "tile_l1_hits": self.tile_l1_hits.tolist(),
            "bank_touches": self.bank_touches.tolist(),
            "bank_requests": self.bank_requests.tolist(),
            "bank_hits": self.bank_hits.tolist(),
            "mc_requests": self.mc_requests.tolist(),
            "mc_queue_delay": self.mc_queue_delay.tolist(),
            "link_flits": {
                f"{src}->{dst}": flits
                for (src, dst), flits in sorted(self.link_flits.items())
            },
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpatialAccumulators):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"SpatialAccumulators(nodes={self.num_nodes}, mcs={self.num_mcs}, "
            f"accesses={int(self.tile_accesses.sum())}, "
            f"links={len(self.link_flits)})"
        )
