"""Prometheus-style text exposition of a Telemetry hub.

``repro metrics`` renders one run's counters, histograms and phase
timers in the Prometheus text format (v0.0.4): counters become
``repro_<name>_total``, exact-value histograms become summaries with
p50/p90/p99 quantile samples, and phase timers become labelled gauges.
The output is deterministic (sorted names, fixed quantile set), so it
can be golden-snapshotted and diffed across runs.

Zero-dependency by design, like the rest of ``repro.obs``: this is a
formatter over the hub's plain dicts, not a client library.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .telemetry import Telemetry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

QUANTILES = (("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0))


def metric_name(name: str, prefix: str = "repro") -> str:
    """A telemetry name as a legal Prometheus metric name."""
    cleaned = _NAME_OK.sub("_", name.strip())
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n"
    )


def prometheus_text(
    telemetry: Telemetry,
    prefix: str = "repro",
    labels: Optional[dict] = None,
) -> str:
    """The hub's state as Prometheus exposition text.

    ``labels`` (e.g. ``{"workload": "mxm", "mapping": "la"}``) are
    attached to every sample; label order follows sorted keys.
    """
    base_labels = dict(sorted((labels or {}).items()))

    def fmt_labels(extra: Optional[dict] = None) -> str:
        merged = dict(base_labels)
        if extra:
            merged.update(extra)
        if not merged:
            return ""
        inner = ",".join(
            f'{key}="{_escape_label(str(value))}"'
            for key, value in merged.items()
        )
        return "{" + inner + "}"

    lines: List[str] = []

    for name in sorted(telemetry.counters):
        metric = metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{fmt_labels()} {telemetry.counters[name]}")

    for name in sorted(telemetry.histograms):
        hist = telemetry.histograms[name]
        metric = metric_name(name, prefix)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for label, p in QUANTILES:
            lines.append(
                f"{metric}{fmt_labels({'quantile': label})} "
                f"{hist.percentile(p)}"
            )
        lines.append(f"{metric}_sum{fmt_labels()} {hist.sum}")
        lines.append(f"{metric}_count{fmt_labels()} {hist.total}")

    if telemetry.phases:
        seconds_metric = metric_name("phase_seconds", prefix)
        calls_metric = metric_name("phase_calls", prefix)
        lines.append(
            f"# HELP {seconds_metric} accumulated wall seconds per phase"
        )
        lines.append(f"# TYPE {seconds_metric} gauge")
        for path in sorted(telemetry.phases):
            record = telemetry.phases[path]
            lines.append(
                f"{seconds_metric}{fmt_labels({'phase': path})} "
                f"{record.seconds:.6f}"
            )
        lines.append(f"# HELP {calls_metric} phase invocation count")
        lines.append(f"# TYPE {calls_metric} counter")
        for path in sorted(telemetry.phases):
            record = telemetry.phases[path]
            lines.append(
                f"{calls_metric}{fmt_labels({'phase': path})} "
                f"{record.calls}"
            )

    return "\n".join(lines) + ("\n" if lines else "")
