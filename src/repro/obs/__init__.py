"""``repro.obs`` -- the observability layer.

Zero-dependency telemetry for the simulator and the mapping pipeline:

* :class:`Telemetry` -- counters, exact-value histograms, nested phase
  timers (``with tele.phase(...)`` / ``@tele.profiled(...)``).
* :class:`SpatialAccumulators` -- per-tile / per-LLC-bank / per-MC /
  per-link traffic counts, recorded identically by both engine modes.
* :class:`EventStream` -- structured JSONL decision events (mapper
  placements, load-balance moves, engine phase boundaries) behind
  level/sampling knobs.
* :func:`build_manifest` / :func:`config_hash` -- run manifests.
* :mod:`repro.obs.render` -- ASCII/CSV heatmaps and phase tables
  (surfaced by ``repro profile`` and ``repro heatmap``).

See ``docs/observability.md`` for the full API and event schema.
"""

from .events import LEVELS, EventStream
from .manifest import (
    build_manifest,
    config_digest,
    config_hash,
    package_version,
    sweep_cache_key,
)
from .spatial import SpatialAccumulators
from .telemetry import Histogram, PhaseRecord, Telemetry, profiled

__all__ = [
    "EventStream",
    "Histogram",
    "LEVELS",
    "PhaseRecord",
    "SpatialAccumulators",
    "Telemetry",
    "build_manifest",
    "config_digest",
    "config_hash",
    "package_version",
    "profiled",
    "sweep_cache_key",
]
