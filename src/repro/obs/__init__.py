"""``repro.obs`` -- the observability layer.

Zero-dependency telemetry for the simulator and the mapping pipeline:

* :class:`Telemetry` -- counters, exact-value histograms, nested phase
  timers (``with tele.phase(...)`` / ``@tele.profiled(...)``).
* :class:`SpatialAccumulators` -- per-tile / per-LLC-bank / per-MC /
  per-link traffic counts, recorded identically by both engine modes.
* :class:`EventStream` -- structured JSONL decision events (mapper
  placements, load-balance moves, engine phase boundaries) behind
  level/sampling knobs.
* :func:`build_manifest` / :func:`config_hash` -- run manifests.
* :mod:`repro.obs.render` -- ASCII/CSV heatmaps and phase tables
  (surfaced by ``repro profile`` and ``repro heatmap``).

See ``docs/observability.md`` for the full API and event schema.
"""

from .bench import (
    BENCH_SCHEMA,
    append_bench,
    bench_envelope,
    check_history,
    load_history,
    read_bench,
)
from .events import LEVELS, EventStream
from .manifest import (
    build_manifest,
    config_digest,
    config_hash,
    package_version,
    sweep_cache_key,
)
from .metrics import prometheus_text
from .spatial import SpatialAccumulators
from .telemetry import Histogram, PhaseRecord, Telemetry, profiled
from .tracing import (
    TRACE_SCHEMA,
    Span,
    TraceContext,
    Tracer,
    derive_trace_id,
    span_id,
    validate_trace_events,
)

__all__ = [
    "BENCH_SCHEMA",
    "EventStream",
    "Histogram",
    "LEVELS",
    "PhaseRecord",
    "Span",
    "SpatialAccumulators",
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "append_bench",
    "bench_envelope",
    "build_manifest",
    "check_history",
    "config_digest",
    "config_hash",
    "derive_trace_id",
    "load_history",
    "package_version",
    "prometheus_text",
    "profiled",
    "read_bench",
    "span_id",
    "sweep_cache_key",
    "validate_trace_events",
]
