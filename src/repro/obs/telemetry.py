"""The telemetry hub: counters, histograms, and nested phase timers.

One :class:`Telemetry` instance accompanies one run (or one experiment).
It is deliberately *pull*-based and zero-dependency: instrumentation sites
hold a reference (or ``None``) and record into plain dicts/arrays; nothing
is rendered until a CLI surface (``repro profile`` / ``repro heatmap``) or
a report asks for it.

Cost model
----------
Telemetry is opt-in.  Components treat an absent (``None``) or disabled
hub as "off" and cache that decision once, so the simulator's hot paths
(the bulk L1-hit filter, the per-packet network transfer) carry at most a
predicate that was hoisted out of the loop.  The perf-harness guard
(``benchmarks/test_perf_telemetry_guard.py``) pins the disabled-mode
overhead below 2%.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from .events import EventStream
from .spatial import SpatialAccumulators


@dataclass
class PhaseRecord:
    """Accumulated wall time of one (possibly nested) phase.

    ``depth`` is the nesting level the phase was recorded at (1 =
    top-level).  Phase *names* may themselves contain dots ("sim.cold"),
    so nesting is tracked by the timer stack, not parsed from the path.
    """

    name: str
    seconds: float = 0.0
    calls: int = 0
    depth: int = 1

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


class Histogram:
    """Exact-value histogram over non-negative integers.

    The simulator's distributions (packet latencies, hop counts, stall
    cycles) are small integers with heavy repetition, so an exact
    ``value -> count`` table is both lossless and compact; percentiles are
    computed from the sorted value table on demand.  ``record_many``
    accepts a numpy array and bins it with one ``np.unique`` pass, so bulk
    paths never loop per sample.
    """

    __slots__ = ("name", "_counts")

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: Dict[int, int] = {}

    # -- recording -------------------------------------------------------
    def record(self, value: int, count: int = 1) -> None:
        value = int(value)
        self._counts[value] = self._counts.get(value, 0) + count

    def record_many(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        uniq, counts = np.unique(np.asarray(values), return_counts=True)
        for v, c in zip(uniq.tolist(), counts.tolist()):
            self._counts[int(v)] = self._counts.get(int(v), 0) + int(c)

    # -- queries ---------------------------------------------------------
    @property
    def total(self) -> int:
        return sum(self._counts.values())

    @property
    def sum(self) -> int:
        return sum(v * c for v, c in self._counts.items())

    @property
    def mean(self) -> float:
        total = self.total
        return self.sum / total if total else 0.0

    @property
    def min(self) -> int:
        return min(self._counts) if self._counts else 0

    @property
    def max(self) -> int:
        return max(self._counts) if self._counts else 0

    def percentile(self, p: float) -> int:
        """Value at the ``p``-th percentile (nearest-rank, p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        total = self.total
        if total == 0:
            return 0
        rank = max(1, int(np.ceil(p / 100.0 * total)))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self.max  # pragma: no cover - rank <= total by construction

    def items(self) -> List:
        return sorted(self._counts.items())

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "mean": round(self.mean, 3),
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.total}, mean={self.mean:.2f})"


class Telemetry:
    """Per-run observability hub.

    ``enabled=False`` builds a hub that every attachment point treats as
    absent -- handy for keeping call sites uniform while paying nothing.
    """

    def __init__(
        self,
        enabled: bool = True,
        events: Optional[EventStream] = None,
    ):
        self.enabled = enabled
        self.events = events if events is not None else EventStream(
            level="decisions" if enabled else "off"
        )
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.phases: Dict[str, PhaseRecord] = {}
        self.spatial: Optional[SpatialAccumulators] = None
        self.manifest: Optional[dict] = None
        self.tracer = None  # Optional[repro.obs.tracing.Tracer]
        self._phase_stack: List[str] = []

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.tracing.Tracer`: phase timers become
        interval spans and admitted decision events become instant child
        spans (via the event stream's tee).  A disabled hub ignores the
        attachment -- tracing piggybacks on telemetry's cost model."""
        if not self.enabled or tracer is None or not tracer.enabled:
            return
        self.tracer = tracer
        self.events.tee = tracer.event_tee()

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    # -- counters --------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    # -- histograms ------------------------------------------------------
    def histogram(self, name: str) -> Histogram:
        """The named histogram (created on first use).

        Hot instrumentation sites should call this once outside their loop
        and keep the returned object.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self.histograms[name] = hist
        return hist

    # -- spatial ---------------------------------------------------------
    def ensure_spatial(self, num_nodes: int, num_mcs: int) -> SpatialAccumulators:
        """The run's spatial accumulators, sized for one machine."""
        if self.spatial is None:
            self.spatial = SpatialAccumulators(num_nodes, num_mcs)
        elif (
            self.spatial.num_nodes != num_nodes
            or self.spatial.num_mcs != num_mcs
        ):
            raise ValueError(
                "telemetry hub already holds spatial accumulators of a "
                "different machine shape; use one Telemetry per machine"
            )
        return self.spatial

    # -- phase timers ----------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a phase; nested phases accumulate under dotted paths."""
        if not self.enabled:
            yield
            return
        self._phase_stack.append(name)
        path = ".".join(self._phase_stack)
        tracer = self.tracer
        span_cm = (
            tracer.span(path, cat="phase") if tracer is not None else None
        )
        if span_cm is not None:
            span_cm.__enter__()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if span_cm is not None:
                span_cm.__exit__(None, None, None)
            record = self.phases.get(path)
            if record is None:
                record = PhaseRecord(path, depth=len(self._phase_stack))
                self.phases[path] = record
            record.add(elapsed)
            self._phase_stack.pop()
            self.events.emit(
                "phase.end",
                level="debug",
                phase=path,
                seconds=round(elapsed, 6),
            )

    def profiled(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`phase`."""

        def wrap(func: Callable) -> Callable:
            phase_name = name or func.__qualname__

            @functools.wraps(func)
            def inner(*args, **kwargs):
                with self.phase(phase_name):
                    return func(*args, **kwargs)

            return inner

        return wrap

    def phase_seconds(self) -> Dict[str, float]:
        return {path: rec.seconds for path, rec in self.phases.items()}

    def phase_rows(self) -> List[List[object]]:
        """``[phase, calls, seconds, share%]`` rows for table rendering.

        The share is of the total *top-level* time, so nested phases read
        as a breakdown rather than double-counting the total.
        """
        top_total = sum(
            rec.seconds for rec in self.phases.values() if rec.depth == 1
        )
        rows: List[List[object]] = []
        for path in sorted(self.phases):
            rec = self.phases[path]
            share = 100.0 * rec.seconds / top_total if top_total else 0.0
            rows.append([path, rec.calls, round(rec.seconds, 4), round(share, 1)])
        return rows

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything the hub holds, as JSON-ready plain data."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
            "phases": {
                path: {"seconds": round(rec.seconds, 6), "calls": rec.calls}
                for path, rec in sorted(self.phases.items())
            },
            "spatial": self.spatial.as_dict() if self.spatial else None,
            "manifest": self.manifest,
        }


def profiled(telemetry: Optional[Telemetry], name: str) -> Callable:
    """Module-level ``@profiled(tele, "name")`` that tolerates ``tele=None``."""

    def wrap(func: Callable) -> Callable:
        if telemetry is None or not telemetry.enabled:
            return func
        return telemetry.profiled(name)(func)

    return wrap
