"""Structured JSONL event stream for scheduling / engine decisions.

Events are plain dicts with a ``kind`` plus arbitrary JSON-serializable
fields.  The stream records *decisions*, not wall time: every field an
event carries is deterministic given (workload, config, seed), which is
what lets the differential suite assert that the fast and reference
engines drive the mapper to byte-identical decision streams.

Levels (cheapest first): ``off`` < ``decisions`` < ``debug``.  An event
carries its own level; the stream drops anything above its configured
level before any formatting work happens.  ``sample`` additionally thins
high-volume kinds deterministically (no RNG: event ``i`` of a kind is
kept iff ``floor((i+1)*sample) > floor(i*sample)``), so two runs with the
same knobs keep exactly the same subsequence.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, IO, List, Optional

LEVELS = ("off", "decisions", "debug")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class EventStream:
    """In-memory (optionally tee'd to a file) JSONL event recorder."""

    def __init__(
        self,
        level: str = "decisions",
        sample: float = 1.0,
        sink: Optional[IO[str]] = None,
    ):
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {level!r}; one of {LEVELS}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        self.level = level
        self.sample = sample
        self.sink = sink
        self.tee: Optional[Callable[[dict], None]] = None
        self.events: List[dict] = []
        self._seq = 0
        self._kind_seq: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    def _admits(self, level: str) -> bool:
        return _LEVEL_RANK[level] <= _LEVEL_RANK[self.level]

    def _sampled(self, kind: str) -> bool:
        """Deterministic thinning; counts every offered event of a kind."""
        i = self._kind_seq.get(kind, 0)
        self._kind_seq[kind] = i + 1
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return math.floor((i + 1) * self.sample) > math.floor(i * self.sample)

    # -- recording -------------------------------------------------------
    def emit(self, kind: str, level: str = "decisions", **fields) -> bool:
        """Record one event; returns whether it was kept."""
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {level!r}; one of {LEVELS}")
        if not self._admits(level) or not self._sampled(kind):
            return False
        event = {"seq": self._seq, "kind": kind}
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self.sink is not None:
            self.sink.write(json.dumps(event, sort_keys=True) + "\n")
        if self.tee is not None:
            # Mirror admitted events to an observer (e.g. the span tracer
            # turning mapper/fault/engine decisions into instant spans).
            self.tee(event)
        return True

    # -- queries ---------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[dict]:
        wanted = set(kinds)
        return [e for e in self.events if e["kind"] in wanted]

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization ---------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.events
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @staticmethod
    def load_jsonl(text: str) -> List[dict]:
        return [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
