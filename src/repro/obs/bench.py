"""Perf-trajectory records: schema-versioned envelopes + regression watch.

The perf harnesses (``benchmarks/test_perf_*.py``) measure throughput
claims -- engine speedup, parallel sweep scaling, disabled-telemetry
overhead.  Before this module they overwrote ``BENCH_*.json`` with bare
numbers, so the trajectory of those claims across commits was
unreconstructible.  Now every measured point is wrapped in an envelope::

    {"schema": "repro.bench/1", "created_unix": ..., "git_sha": ...,
     "host": <fingerprint>, "python": ..., "version": ...,
     "metrics": {"speedup": {"value": 4.9, "direction": "higher"}},
     "record": {<the harness's full record, unchanged>}}

and, in addition to the ``BENCH_*.json`` file at the repo root, appended
to ``benchmarks/history/<name>.jsonl`` -- one line per run, append-only,
which is the trajectory ``repro bench history`` lists and ``repro bench
check`` watches for regressions.

The reader is backward-compatible: pre-envelope entries (bare records)
are wrapped on load with ``schema: "legacy"`` and metrics recovered from
well-known keys, so an old BENCH file still yields a trajectory.
"""

from __future__ import annotations

import json
import math
import os
import platform
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .manifest import package_version

BENCH_SCHEMA = "repro.bench/1"

DEFAULT_HISTORY_DIR = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "history"
)

DEFAULT_TOLERANCE = 0.10
"""Noise band: a metric must move more than 10% past the recorded
trajectory's geomean (in its bad direction) to count as a regression."""

_LEGACY_METRIC_KEYS = {
    # record key -> direction ("higher"/"lower" is better)
    "speedup": "higher",
    "warm_fraction_of_serial": "lower",
    "overhead_fraction": "lower",
}


def git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except Exception:
        return "unknown"


def host_fingerprint() -> str:
    """A short stable identifier of the measuring machine."""
    return (
        f"{socket.gethostname()}/{platform.machine()}/"
        f"{os.cpu_count() or 0}cpu"
    )


def bench_envelope(
    record: Dict[str, Any],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Wrap one harness record in the schema-versioned envelope.

    ``metrics`` maps metric name to ``{"value": float, "direction":
    "higher"|"lower"}`` -- the scalars the regression watch tracks.
    When omitted, well-known record keys are promoted.
    """
    if metrics is None:
        metrics = _recover_metrics(record)
    for name, spec in metrics.items():
        if spec.get("direction") not in ("higher", "lower"):
            raise ValueError(
                f"metric {name!r}: direction must be 'higher' or 'lower'"
            )
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": record.get("benchmark", "unknown"),
        "created_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "python": platform.python_version(),
        "version": package_version(),
        "metrics": {
            name: {
                "value": float(spec["value"]),
                "direction": spec["direction"],
            }
            for name, spec in sorted(metrics.items())
        },
        "record": record,
    }


def _recover_metrics(record: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    metrics: Dict[str, Dict[str, Any]] = {}
    for key, direction in _LEGACY_METRIC_KEYS.items():
        value = record.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = {"value": float(value), "direction": direction}
    return metrics


def wrap_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """An on-disk entry as an envelope, whatever vintage it is."""
    if entry.get("schema") == BENCH_SCHEMA and "record" in entry:
        return entry
    # Legacy bare record: synthesize an envelope around it.
    manifest = entry.get("manifest") or {}
    return {
        "schema": "legacy",
        "benchmark": entry.get("benchmark", "unknown"),
        "created_unix": None,
        "git_sha": "unknown",
        "host": "unknown",
        "python": manifest.get("python", "unknown"),
        "version": manifest.get("version", "unknown"),
        "metrics": _recover_metrics(entry),
        "record": entry,
    }


def read_bench(path: "str | Path") -> List[Dict[str, Any]]:
    """All envelopes of one ``BENCH_*.json`` file (legacy-tolerant)."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = [data]
    return [wrap_entry(entry) for entry in data if isinstance(entry, dict)]


def history_name(bench_path: "str | Path") -> str:
    """``BENCH_engine.json`` -> ``engine``: the trajectory series name."""
    stem = Path(bench_path).stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem or "unknown"


def append_bench(
    bench_path: "str | Path",
    record: Dict[str, Any],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    history_dir: "str | Path | None" = None,
) -> Dict[str, Any]:
    """Record one measured point: BENCH file + append-only history line.

    The BENCH file keeps its historical list shape (now of envelopes;
    pre-existing bare records are preserved verbatim), and the same
    envelope is appended as one JSONL line to
    ``<history_dir>/<name>.jsonl``.  Returns the envelope.
    """
    bench_path = Path(bench_path)
    envelope = bench_envelope(record, metrics)

    existing: List[Dict[str, Any]] = []
    if bench_path.exists():
        loaded = json.loads(bench_path.read_text(encoding="utf-8"))
        if isinstance(loaded, list):
            existing = loaded
        elif isinstance(loaded, dict):
            existing = [loaded]
    existing.append(envelope)
    bench_path.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    directory = Path(history_dir) if history_dir else DEFAULT_HISTORY_DIR
    directory.mkdir(parents=True, exist_ok=True)
    series = directory / f"{history_name(bench_path)}.jsonl"
    with series.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(envelope, sort_keys=True) + "\n")
    return envelope


def load_history(
    history_dir: "str | Path | None" = None,
) -> Dict[str, List[Dict[str, Any]]]:
    """series name -> chronological envelopes from the history JSONLs."""
    directory = Path(history_dir) if history_dir else DEFAULT_HISTORY_DIR
    series: Dict[str, List[Dict[str, Any]]] = {}
    if not directory.exists():
        return series
    for path in sorted(directory.glob("*.jsonl")):
        entries = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(wrap_entry(json.loads(line)))
            except (json.JSONDecodeError, AttributeError):
                continue  # one corrupt line must not sink the trajectory
        if entries:
            series[path.stem] = entries
    return series


def _baseline(values: List[float]) -> float:
    """Geomean of the trajectory (arithmetic mean when signs preclude it)."""
    if all(v > 0 for v in values):
        return math.exp(sum(math.log(v) for v in values) / len(values))
    return sum(values) / len(values)


def check_history(
    history_dir: "str | Path | None" = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Flag latest-vs-trajectory regressions beyond the noise band.

    For every (series, metric) with at least two points: the baseline is
    the geomean of all *prior* values, and the latest point regresses if
    it is worse (in the metric's bad direction) than baseline by more
    than ``tolerance``.  Relative change is computed against
    ``max(|baseline|, 1e-9)``, so near-zero baselines (e.g. overhead
    fractions) degrade to absolute comparison rather than dividing by
    zero.
    """
    report: Dict[str, Any] = {
        "schema": "repro.bench-check/1",
        "tolerance": tolerance,
        "series": {},
        "regressions": [],
        "ok": True,
    }
    for name, entries in sorted(load_history(history_dir).items()):
        metrics: Dict[str, List[float]] = {}
        for entry in entries:
            for metric, spec in (entry.get("metrics") or {}).items():
                value = spec.get("value")
                if isinstance(value, (int, float)):
                    metrics.setdefault(metric, []).append(float(value))
        series_report: Dict[str, Any] = {"entries": len(entries)}
        for metric, values in sorted(metrics.items()):
            direction = "higher"
            for entry in reversed(entries):
                spec = (entry.get("metrics") or {}).get(metric)
                if spec:
                    direction = spec.get("direction", "higher")
                    break
            latest = values[-1]
            verdict: Dict[str, Any] = {
                "points": len(values),
                "latest": latest,
                "direction": direction,
            }
            if len(values) >= 2:
                baseline = _baseline(values[:-1])
                denom = max(abs(baseline), 1e-9)
                delta = (latest - baseline) / denom
                worse = -delta if direction == "higher" else delta
                verdict.update({
                    "baseline": round(baseline, 6),
                    "delta_fraction": round(delta, 6),
                    "regressed": worse > tolerance,
                })
                if verdict["regressed"]:
                    report["ok"] = False
                    report["regressions"].append({
                        "series": name,
                        "metric": metric,
                        "baseline": round(baseline, 6),
                        "latest": latest,
                        "delta_fraction": round(delta, 6),
                    })
            else:
                verdict.update({"baseline": None, "regressed": False})
            series_report[metric] = verdict
        report["series"][name] = series_report
    return report
