"""Rendering of telemetry: mesh heatmaps (ASCII/CSV) and phase tables.

The heatmaps are the paper's qualitative story made visible: per-tile
access pressure, per-LLC-bank hit locality, per-MC request skew and
per-link NoC utilization, drawn over the mesh with region boundaries so
the R1..R9 structure of Figure 6 is recognizable at a glance.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.report import format_table
from repro.noc.topology import Mesh2D
from repro.noc.visualize import render_link_utilization, render_node_values

from .spatial import SpatialAccumulators
from .telemetry import Telemetry

HEATMAP_METRICS = (
    "tile",      # per-tile accesses issued (L1 accesses)
    "l1miss",    # per-tile L1 misses (traffic sources)
    "touch",     # per-bank home-address touches (data placement)
    "bank",      # per-bank L1-miss requests
    "bankhit",   # per-bank LLC hits (CAI locality)
    "mc",        # per-MC off-chip requests (rendered at MC nodes)
    "mcqueue",   # per-MC cumulative queueing cycles
    "link",      # per-link flits, folded to flits leaving each node
)


def _node_values(
    spatial: SpatialAccumulators, mesh: Mesh2D, metric: str
) -> Dict[int, float]:
    if metric == "tile":
        values = spatial.tile_accesses
    elif metric == "l1miss":
        values = spatial.tile_l1_misses
    elif metric == "touch":
        values = spatial.bank_touches
    elif metric == "bank":
        values = spatial.bank_requests
    elif metric == "bankhit":
        values = spatial.bank_hits
    elif metric == "link":
        values = spatial.node_link_load()
    elif metric in ("mc", "mcqueue"):
        source = (
            spatial.mc_requests if metric == "mc" else spatial.mc_queue_delay
        )
        return {
            mesh.mc_node(i): float(source[i]) for i in range(spatial.num_mcs)
        }
    else:
        raise ValueError(
            f"unknown heatmap metric {metric!r}; one of {HEATMAP_METRICS}"
        )
    return {node: float(values[node]) for node in range(len(values))}


def render_heatmap(
    spatial: SpatialAccumulators,
    mesh: Mesh2D,
    metric: str,
    region_w: int = 0,
    region_h: int = 0,
    title: Optional[str] = None,
) -> str:
    """ASCII mesh heatmap of one metric, region boundaries included."""
    values = _node_values(spatial, mesh, metric)
    peak = max(values.values(), default=0.0)
    width = max(5, len(f"{int(peak)}") + 2)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        render_node_values(
            mesh,
            values,
            cell_width=width,
            fmt="{:" + str(width - 1) + ".0f}",
            region_w=region_w,
            region_h=region_h,
        )
    )
    total = sum(values.values())
    lines.append(
        f"total {int(total)}, peak {int(peak)}"
        + (f", peak/mean {peak * len(values) / total:.2f}x" if total else "")
    )
    if metric == "link" and spatial.link_flits:
        lines.append(render_link_utilization(mesh, spatial.link_flits))
    return "\n".join(lines)


def heatmap_csv(
    spatial: SpatialAccumulators, mesh: Mesh2D, metric: str
) -> str:
    """CSV form: ``node,x,y,value`` rows (links: ``src,dst,flits``)."""
    out = io.StringIO()
    if metric == "link":
        out.write("src,dst,src_x,src_y,dst_x,dst_y,flits\n")
        for (src, dst), flits in spatial.link_matrix():
            sx, sy = mesh.coord(src)
            dx, dy = mesh.coord(dst)
            out.write(f"{src},{dst},{sx},{sy},{dx},{dy},{flits}\n")
        return out.getvalue()
    values = _node_values(spatial, mesh, metric)
    out.write("node,x,y,value\n")
    for node in sorted(values):
        x, y = mesh.coord(node)
        out.write(f"{node},{x},{y},{int(values[node])}\n")
    return out.getvalue()


def render_phase_table(telemetry: Telemetry, title: str = "phase profile") -> str:
    rows = telemetry.phase_rows()
    if not rows:
        return f"{title}: (no phases recorded)"
    return format_table(
        ["phase", "calls", "seconds", "share %"],
        rows,
        title=title,
        float_fmt="{:.4f}",
    )


def render_histograms(telemetry: Telemetry) -> str:
    if not telemetry.histograms:
        return "(no histograms recorded)"
    rows = []
    for name, hist in sorted(telemetry.histograms.items()):
        d = hist.as_dict()
        rows.append([
            name, d["total"], d["mean"], d["min"], d["p50"], d["p90"],
            d["p99"], d["max"],
        ])
    return format_table(
        ["histogram", "n", "mean", "min", "p50", "p90", "p99", "max"],
        rows,
        title="distributions",
        float_fmt="{:.2f}",
    )


def render_manifest(manifest: Optional[dict]) -> str:
    if not manifest:
        return "(no manifest)"
    lines = ["run manifest", "============"]
    for key in sorted(manifest):
        value = manifest[key]
        if key == "phase_seconds" and isinstance(value, dict):
            for phase, seconds in sorted(value.items()):
                lines.append(f"  phase {phase}: {seconds:.4f}s")
            continue
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
