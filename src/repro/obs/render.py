"""Rendering of telemetry: mesh heatmaps (ASCII/CSV) and phase tables.

The heatmaps are the paper's qualitative story made visible: per-tile
access pressure, per-LLC-bank hit locality, per-MC request skew and
per-link NoC utilization, drawn over the mesh with region boundaries so
the R1..R9 structure of Figure 6 is recognizable at a glance.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.report import format_table
from repro.noc.topology import Mesh2D
from repro.noc.visualize import render_link_utilization, render_node_values

from .spatial import SpatialAccumulators
from .telemetry import Telemetry

HEATMAP_METRICS = (
    "tile",      # per-tile accesses issued (L1 accesses)
    "l1miss",    # per-tile L1 misses (traffic sources)
    "touch",     # per-bank home-address touches (data placement)
    "bank",      # per-bank L1-miss requests
    "bankhit",   # per-bank LLC hits (CAI locality)
    "mc",        # per-MC off-chip requests (rendered at MC nodes)
    "mcqueue",   # per-MC cumulative queueing cycles
    "link",      # per-link flits, folded to flits leaving each node
)


def _node_values(
    spatial: SpatialAccumulators, mesh: Mesh2D, metric: str
) -> Dict[int, float]:
    if metric == "tile":
        values = spatial.tile_accesses
    elif metric == "l1miss":
        values = spatial.tile_l1_misses
    elif metric == "touch":
        values = spatial.bank_touches
    elif metric == "bank":
        values = spatial.bank_requests
    elif metric == "bankhit":
        values = spatial.bank_hits
    elif metric == "link":
        values = spatial.node_link_load()
    elif metric in ("mc", "mcqueue"):
        source = (
            spatial.mc_requests if metric == "mc" else spatial.mc_queue_delay
        )
        return {
            mesh.mc_node(i): float(source[i]) for i in range(spatial.num_mcs)
        }
    else:
        raise ValueError(
            f"unknown heatmap metric {metric!r}; one of {HEATMAP_METRICS}"
        )
    return {node: float(values[node]) for node in range(len(values))}


def render_heatmap(
    spatial: SpatialAccumulators,
    mesh: Mesh2D,
    metric: str,
    region_w: int = 0,
    region_h: int = 0,
    title: Optional[str] = None,
) -> str:
    """ASCII mesh heatmap of one metric, region boundaries included."""
    values = _node_values(spatial, mesh, metric)
    peak = max(values.values(), default=0.0)
    width = max(5, len(f"{int(peak)}") + 2)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        render_node_values(
            mesh,
            values,
            cell_width=width,
            fmt="{:" + str(width - 1) + ".0f}",
            region_w=region_w,
            region_h=region_h,
        )
    )
    total = sum(values.values())
    lines.append(
        f"total {int(total)}, peak {int(peak)}"
        + (f", peak/mean {peak * len(values) / total:.2f}x" if total else "")
    )
    if metric == "link" and spatial.link_flits:
        lines.append(render_link_utilization(mesh, spatial.link_flits))
    return "\n".join(lines)


def heatmap_csv(
    spatial: SpatialAccumulators, mesh: Mesh2D, metric: str
) -> str:
    """CSV form: ``node,x,y,value`` rows (links: ``src,dst,flits``)."""
    out = io.StringIO()
    if metric == "link":
        out.write("src,dst,src_x,src_y,dst_x,dst_y,flits\n")
        for (src, dst), flits in spatial.link_matrix():
            sx, sy = mesh.coord(src)
            dx, dy = mesh.coord(dst)
            out.write(f"{src},{dst},{sx},{sy},{dx},{dy},{flits}\n")
        return out.getvalue()
    values = _node_values(spatial, mesh, metric)
    out.write("node,x,y,value\n")
    for node in sorted(values):
        x, y = mesh.coord(node)
        out.write(f"{node},{x},{y},{int(values[node])}\n")
    return out.getvalue()


def render_fault_overlay(
    mesh: Mesh2D,
    plan,
    title: Optional[str] = None,
) -> str:
    """ASCII mesh overlay of a :class:`repro.faults.FaultPlan`.

    One cell per node; markers compose per node:

    * ``B`` -- this node's LLC bank is offline;
    * ``R`` -- hotspot router (extra pipeline cycles);
    * ``M!``/``M~`` -- the MC at this node is offline / throttled;
    * ``x``/``~`` suffix -- at least one outgoing link is down / throttled.

    A textual list of the plan's specs follows the grid, so the overlay
    is self-describing in CI logs.
    """
    offline_banks = {f.bank for f in plan.banks}
    hotspots = {mesh.node_id(f.node) for f in plan.routers}
    mc_state: Dict[int, str] = {}
    for f in plan.mcs:
        mc_state[mesh.mc_node(f.mc)] = "M!" if f.offline else "M~"
    link_state: Dict[int, str] = {}
    for f in plan.links:
        src = mesh.node_id(f.src)
        mark = "x" if f.down else "~"
        # A downed outgoing link outranks a throttled one on the same node.
        if link_state.get(src) != "x":
            link_state[src] = mark
    values: Dict[int, str] = {}
    for node in range(mesh.num_nodes):
        marks = ""
        if node in mc_state:
            marks += mc_state[node]
        if node in offline_banks:
            marks += "B"
        if node in hotspots:
            marks += "R"
        marks += link_state.get(node, "")
        values[node] = marks or "."
    width = max(5, max(len(v) for v in values.values()) + 2)
    lines = []
    if title:
        lines.append(title)
    grid_lines = []
    for y in range(mesh.height):
        row = []
        for x in range(mesh.width):
            node = mesh.node_id((x, y))
            row.append(values[node].center(width))
        grid_lines.append("".join(row))
    lines.extend(grid_lines)
    lines.append(
        "legend: B bank offline, R hotspot router, M! MC offline, "
        "M~ MC throttled, x link down, ~ link throttled"
    )
    if plan.is_empty:
        lines.append("faults: (none)")
    else:
        lines.append("faults:")
        lines.extend(f"  {spec}" for spec in plan.to_specs())
    return "\n".join(lines)


def render_phase_table(telemetry: Telemetry, title: str = "phase profile") -> str:
    rows = telemetry.phase_rows()
    if not rows:
        return f"{title}: (no phases recorded)"
    return format_table(
        ["phase", "calls", "seconds", "share %"],
        rows,
        title=title,
        float_fmt="{:.4f}",
    )


def render_histograms(telemetry: Telemetry) -> str:
    if not telemetry.histograms:
        return "(no histograms recorded)"
    rows = []
    for name, hist in sorted(telemetry.histograms.items()):
        d = hist.as_dict()
        rows.append([
            name, d["total"], d["mean"], d["min"], d["p50"], d["p90"],
            d["p99"], d["max"],
        ])
    return format_table(
        ["histogram", "n", "mean", "min", "p50", "p90", "p99", "max"],
        rows,
        title="distributions",
        float_fmt="{:.2f}",
    )


def render_manifest(manifest: Optional[dict]) -> str:
    if not manifest:
        return "(no manifest)"
    lines = ["run manifest", "============"]
    for key in sorted(manifest):
        value = manifest[key]
        if key == "phase_seconds" and isinstance(value, dict):
            for phase, seconds in sorted(value.items()):
                lines.append(f"  phase {phase}: {seconds:.4f}s")
            continue
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
