"""Cross-process span tracing with deterministic ids and Perfetto export.

The span runtime extends the telemetry hub across the process boundary:
the PR 5 sweep executor fans cells out over a ``ProcessPoolExecutor``,
and without it the workers' phase timers, retries, backoffs and cache
hits are invisible on one timeline.  Three pieces:

* :class:`TraceContext` -- the picklable capsule a coordinator hands a
  worker: the trace id, the scope (a sweep cell's content-addressed
  key), the parent span id and the submit wall time.  It crosses the
  process boundary inside :class:`repro.exec.SweepCell` and is
  re-hydrated into a fresh :class:`Tracer` in the worker.
* :class:`Span` / :class:`Tracer` -- zero-dependency span recording.
  Span ids are **deterministic**: derived from the trace id (itself
  derived from the run manifest's ``config_hash`` recipe), the scope,
  the span name and a per-``(scope, name)`` occurrence counter -- never
  from the wall clock or the pid.  Two runs of the same manifest + cell
  keys therefore produce byte-identical span ids, which is what lets the
  equivalence suite compare serial, 4-worker and cache-warm timelines.
* Chrome/Perfetto export -- :meth:`Tracer.to_trace_json` renders the
  merged multi-process timeline in the Trace Event JSON format
  (``chrome://tracing`` / https://ui.perfetto.dev load it directly).

Wall-clock timestamps are obviously not deterministic; determinism
claims are scoped to :meth:`Tracer.skeleton`, the timestamp-free
projection (id, scope, name, cat, parent) the tests hash.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

TRACE_SCHEMA = "repro.trace/1"

COORDINATOR_SCOPE = "coord"
"""Scope of spans recorded by the sweep coordinator itself."""

_TEE_SKIP_KINDS = frozenset({"phase.end"})
"""Event kinds the tracer bridge drops: phases are already full spans."""


def derive_trace_id(material: Any) -> str:
    """Deterministic 16-hex trace id from JSON-serializable material.

    Callers feed the same recipe the run manifest pins (the config hash
    plus the sorted cell keys), so one logical experiment always gets
    the same trace id -- no wall clock, no randomness.
    """
    payload = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def span_id(trace_id: str, scope: str, name: str, index: int) -> str:
    """Deterministic 16-hex span id.

    ``index`` is the occurrence counter of ``name`` within ``scope``;
    execution inside one scope (one cell, one process) is deterministic,
    so the counter -- and hence the id -- reproduces across runs.
    """
    material = f"{trace_id}|{scope}|{name}|{index}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to continue the coordinator's trace."""

    trace_id: str
    scope: str = COORDINATOR_SCOPE
    parent_span_id: Optional[str] = None
    submitted_unix: Optional[float] = None

    def child(
        self,
        scope: str,
        parent_span_id: Optional[str] = None,
        submitted_unix: Optional[float] = None,
    ) -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id,
            scope=scope,
            parent_span_id=(
                parent_span_id
                if parent_span_id is not None
                else self.parent_span_id
            ),
            submitted_unix=submitted_unix,
        )


@dataclass
class Span:
    """One recorded interval (or instant, when ``duration`` is 0)."""

    span_id: str
    name: str
    cat: str
    scope: str
    start_unix: float
    duration: float = 0.0
    parent_id: Optional[str] = None
    pid: int = 0
    instant: bool = False
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "cat": self.cat,
            "scope": self.scope,
            "start_unix": round(self.start_unix, 6),
            "duration": round(self.duration, 6),
            "parent_id": self.parent_id,
            "pid": self.pid,
            "instant": self.instant,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            span_id=data["span_id"],
            name=data["name"],
            cat=data.get("cat", "phase"),
            scope=data.get("scope", COORDINATOR_SCOPE),
            start_unix=float(data.get("start_unix", 0.0)),
            duration=float(data.get("duration", 0.0)),
            parent_id=data.get("parent_id"),
            pid=int(data.get("pid", 0)),
            instant=bool(data.get("instant", False)),
            args=dict(data.get("args") or {}),
        )


class Tracer:
    """Per-process span recorder; one per coordinator and one per cell.

    ``enabled=False`` builds a no-op tracer (every record path returns
    immediately), mirroring the :class:`~repro.obs.telemetry.Telemetry`
    cost model: disabled tracing must stay under the existing <2%
    telemetry overhead guard.
    """

    def __init__(self, context: TraceContext, enabled: bool = True):
        self.context = context
        self.enabled = enabled
        # repro-lint: allow[DET101] reason=pid labels Perfetto tracks; span ids never use it
        self.pid = os.getpid()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._counters: Dict[tuple, int] = {}

    @classmethod
    def disabled(cls) -> "Tracer":
        return cls(TraceContext(trace_id="off"), enabled=False)

    # -- id derivation ---------------------------------------------------
    def _next_id(self, scope: str, name: str) -> str:
        index = self._counters.get((scope, name), 0)
        self._counters[(scope, name)] = index + 1
        return span_id(self.context.trace_id, scope, name, index)

    def _parent_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        return self.context.parent_span_id

    # -- recording -------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "phase",
        scope: Optional[str] = None,
        **args: Any,
    ) -> Iterator[Optional[Span]]:
        """Record one interval span around the ``with`` body."""
        if not self.enabled:
            yield None
            return
        scope = scope if scope is not None else self.context.scope
        span = Span(
            span_id=self._next_id(scope, name),
            name=name,
            cat=cat,
            scope=scope,
            # repro-lint: allow[DET101] reason=span timestamps are timing data, not id material
            start_unix=time.time(),
            parent_id=self._parent_id(),
            pid=self.pid,
            args=dict(args),
        )
        self._stack.append(span)
        # repro-lint: allow[DET101] reason=duration measurement, not id material
        t0 = time.perf_counter()
        try:
            yield span
        finally:
            # repro-lint: allow[DET101] reason=duration measurement, not id material
            span.duration = time.perf_counter() - t0
            self._stack.pop()
            self.spans.append(span)

    def instant(
        self,
        name: str,
        cat: str = "event",
        scope: Optional[str] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record one point-in-time marker."""
        if not self.enabled:
            return None
        scope = scope if scope is not None else self.context.scope
        span = Span(
            span_id=self._next_id(scope, name),
            name=name,
            cat=cat,
            scope=scope,
            # repro-lint: allow[DET101] reason=span timestamps are timing data, not id material
            start_unix=time.time(),
            parent_id=self._parent_id(),
            pid=self.pid,
            instant=True,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def interval(
        self,
        name: str,
        start_unix: float,
        end_unix: float,
        cat: str = "executor",
        scope: Optional[str] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record a span whose endpoints were measured externally.

        Used for queue-wait: the coordinator stamps the submit time into
        the :class:`TraceContext` and the worker closes the interval at
        its own start.
        """
        if not self.enabled:
            return None
        scope = scope if scope is not None else self.context.scope
        span = Span(
            span_id=self._next_id(scope, name),
            name=name,
            cat=cat,
            scope=scope,
            start_unix=start_unix,
            duration=max(0.0, end_unix - start_unix),
            parent_id=self._parent_id(),
            pid=self.pid,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def add_spans(self, span_dicts: Sequence[Dict[str, Any]]) -> None:
        """Merge spans serialized by another process's tracer."""
        if not self.enabled:
            return
        for data in span_dicts:
            self.spans.append(Span.from_dict(data))

    # -- event-stream bridge ---------------------------------------------
    def event_tee(self) -> Callable[[dict], None]:
        """A callback for :attr:`EventStream.tee`: mirrors decision events
        (mapper placements, fault injections, engine trips) as instant
        child spans, categorized by their kind prefix."""

        def tee(event: dict) -> None:
            kind = event.get("kind", "event")
            if kind in _TEE_SKIP_KINDS:
                return
            cat = kind.split(".", 1)[0]
            args = {
                k: v for k, v in event.items() if k not in ("kind", "seq")
            }
            self.instant(kind, cat=cat, **args)

        return tee

    # -- serialization ---------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    # -- deterministic projection ----------------------------------------
    def skeleton(
        self, scopes: Optional[Sequence[str]] = None
    ) -> List[str]:
        """Timestamp- and pid-free projection, sorted: the byte-identical
        part of a trace.  ``scopes`` restricts to deterministic scopes
        (cell keys); coordinator-side retry/rebuild spans depend on
        scheduling and are excluded by passing the cell-key scopes."""
        wanted = set(scopes) if scopes is not None else None
        rows = [
            "|".join([
                span.scope,
                span.name,
                span.cat,
                span.span_id,
                span.parent_id or "-",
            ])
            for span in self.spans
            if wanted is None or span.scope in wanted
        ]
        return sorted(rows)

    # -- Chrome/Perfetto Trace Event export ------------------------------
    def trace_events(self) -> List[Dict[str, Any]]:
        """The merged timeline as Trace Event dicts (``ph`` X/i/M).

        Timestamps are microseconds since the earliest recorded span, so
        the exported file starts at t=0 whatever the wall clock said.
        Events are ordered by (pid, ts, name) for stable rendering.
        """
        if not self.spans:
            return []
        t0 = min(span.start_unix for span in self.spans)
        events: List[Dict[str, Any]] = []
        pids = sorted({span.pid for span in self.spans})
        for pid in pids:
            role = "coordinator" if pid == self.pid else "worker"
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{role} pid={pid}"},
            })
        timeline = []
        for span in self.spans:
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": span.cat,
                "pid": span.pid,
                "tid": 0,
                "ts": round((span.start_unix - t0) * 1e6, 3),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "scope": span.scope,
                    **span.args,
                },
            }
            if span.instant:
                event["ph"] = "i"
                event["s"] = "p"
            else:
                event["ph"] = "X"
                event["dur"] = round(span.duration * 1e6, 3)
            timeline.append(event)
        timeline.sort(key=lambda e: (e["pid"], e["ts"], e["name"]))
        return events + timeline

    def to_trace_json(self, indent: Optional[int] = None) -> str:
        """The full Perfetto-loadable JSON document."""
        document = {
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "trace_id": self.context.trace_id,
                "spans": len(self.spans),
                "pids": sorted({span.pid for span in self.spans}),
            },
            "traceEvents": self.trace_events(),
        }
        return json.dumps(document, indent=indent, sort_keys=True) + "\n"

    def save(self, path: str, indent: Optional[int] = 1) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_trace_json(indent=indent))

    # -- queries ---------------------------------------------------------
    def of_name(self, *names: str) -> List[Span]:
        wanted = set(names)
        return [span for span in self.spans if span.name in wanted]

    def worker_pids(self) -> List[int]:
        """Distinct pids of spans recorded outside this process."""
        return sorted({
            span.pid for span in self.spans if span.pid != self.pid
        })

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Tracer(trace_id={self.context.trace_id!r}, "
            f"spans={len(self.spans)}, enabled={self.enabled})"
        )


def validate_trace_events(document: Dict[str, Any]) -> List[str]:
    """Schema check of an exported trace document; returns violations.

    Not a full Trace Event validator -- it pins the invariants Perfetto
    needs to load the file: a ``traceEvents`` list whose entries carry
    ``ph``/``name``/``pid``, duration events a numeric ``ts``/``dur``,
    and instants a scope letter.  CI runs this over the sweep trace
    artifact.
    """
    violations: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            violations.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            violations.append(f"event {i}: unknown ph {ph!r}")
            continue
        if "name" not in event or "pid" not in event:
            violations.append(f"event {i}: missing name/pid")
        if ph == "X":
            if not isinstance(event.get("ts"), (int, float)):
                violations.append(f"event {i}: X without numeric ts")
            if not isinstance(event.get("dur"), (int, float)):
                violations.append(f"event {i}: X without numeric dur")
            elif event["dur"] < 0:
                violations.append(f"event {i}: negative dur")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            violations.append(f"event {i}: instant without scope letter")
    return violations
