"""Location-aware computation-to-core assignment for NoC manycores.

A reproduction of "Enhancing Computation-to-Core Assignment with Physical
Location Information" (Kislal et al., PLDI 2018): a compiler pass that maps
loop-iteration sets to cores of a mesh manycore so that off-chip accesses
are served by nearby memory controllers and (for shared LLCs) cache accesses
by nearby banks -- plus everything needed to evaluate it: a loop IR, cache
miss estimation, a NoC/cache/DRAM simulator, 21 benchmark models, baselines
and the full experiment harness.

Quickstart::

    from repro import (
        DEFAULT_CONFIG, build_workload, compare,
    )

    workload = build_workload("mxm")
    comparison, _, _ = compare(workload, DEFAULT_CONFIG)
    print(comparison.network_latency_reduction,
          comparison.execution_time_reduction)
"""

from repro.core import (
    LocationAwareCompiler,
    Mapper,
    RegionPartition,
    SetAffinity,
    eta,
)
from repro.experiments.harness import RunResult, compare, run_workload
from repro.sim.config import DEFAULT_CONFIG, NetworkModel, SystemConfig
from repro.sim.stats import Comparison, RunStats
from repro.workloads import SUITE_ORDER, build_suite, build_workload

__version__ = "1.0.0"

__all__ = [
    "LocationAwareCompiler",
    "Mapper",
    "RegionPartition",
    "SetAffinity",
    "eta",
    "RunResult",
    "compare",
    "run_workload",
    "DEFAULT_CONFIG",
    "NetworkModel",
    "SystemConfig",
    "Comparison",
    "RunStats",
    "SUITE_ORDER",
    "build_suite",
    "build_workload",
    "__version__",
]
