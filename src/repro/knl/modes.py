"""KNL cluster modes as address-distribution policies.

Knights Landing's cluster modes (Section 5, "Results with Intel KNL") are,
mechanically, policies for how physical addresses are spread over the chip's
cache slices and memory interfaces:

* **all-to-all** -- addresses are uniformly hashed over all tiles' cache
  slices and all memory interfaces, with no locality between the slice and
  the memory serving a miss.
* **quadrant**  -- the chip is divided into four virtual quadrants; an
  address's cache slice lives in the same quadrant as the memory interface
  that owns the address, so the slice-to-memory leg stays local.
* **SNC-4**     -- each quadrant is exposed as a NUMA cluster: in addition
  to the quadrant guarantee, pages are allocated in the quadrant of the
  cores that use them (first-touch), maximizing locality at the price of
  concentrating traffic on intra-quadrant links.

We model these on the same 6x6-mesh machine used everywhere else (one core
per tile), by overriding the (MC, LLC-bank) selection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.address import AddressLayout
from repro.memory.distribution import DataDistribution, Granularity


class ClusterMode(enum.Enum):
    ALL_TO_ALL = "all-to-all"
    QUADRANT = "quadrant"
    SNC4 = "SNC-4"


def _mix(value: int) -> int:
    """Cheap deterministic integer hash (xorshift-multiply)."""
    value = (value ^ (value >> 16)) * 0x45D9F3B
    value = (value ^ (value >> 16)) * 0x45D9F3B
    return (value ^ (value >> 16)) & 0x7FFFFFFF


def quadrant_of_node(node: int, mesh_width: int, mesh_height: int) -> int:
    """Quadrant id (0..3) of a mesh node: 2x2 grid of half-meshes."""
    x, y = node % mesh_width, node // mesh_width
    qx = 0 if x < (mesh_width + 1) // 2 else 1
    qy = 0 if y < (mesh_height + 1) // 2 else 1
    return qy * 2 + qx


@dataclass(frozen=True)
class KnlDistribution(DataDistribution):
    """(MC, cache-slice) selection under a KNL cluster mode.

    For ``SNC4`` an optional first-touch table maps virtual page numbers to
    quadrants (built by :func:`first_touch_pages`); pages not in the table
    fall back to round-robin over quadrants.
    """

    mode: ClusterMode = ClusterMode.ALL_TO_ALL
    mesh_width: int = 6
    mesh_height: int = 6
    page_to_quadrant: Optional[Dict[int, int]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        nodes_by_quadrant: List[List[int]] = [[] for _ in range(4)]
        for node in range(self.mesh_width * self.mesh_height):
            quadrant = quadrant_of_node(node, self.mesh_width, self.mesh_height)
            nodes_by_quadrant[quadrant].append(node)
        object.__setattr__(self, "_quadrant_nodes", nodes_by_quadrant)
        # Corner MC of each quadrant (MC order: TL, TR, BR, BL).
        object.__setattr__(self, "_quadrant_mc", {0: 0, 1: 1, 3: 2, 2: 3})
        object.__setattr__(
            self, "_mc_quadrant", {0: 0, 1: 1, 2: 3, 3: 2}
        )

    # ------------------------------------------------------------------
    def _page_quadrant(self, addr: int) -> int:
        page = self.layout.page_number(addr)
        if self.mode is ClusterMode.SNC4 and self.page_to_quadrant is not None:
            quadrant = self.page_to_quadrant.get(page)
            if quadrant is not None:
                return quadrant
        return page % 4

    def mc_of(self, addr: int) -> int:
        if self.mode is ClusterMode.ALL_TO_ALL:
            return _mix(self.layout.page_number(addr)) % self.num_mcs
        return self._quadrant_mc[self._page_quadrant(addr)]

    def bank_of(self, addr: int) -> int:
        line = self.layout.line_number(addr)
        if self.mode is ClusterMode.ALL_TO_ALL:
            return _mix(line) % self.num_llc_banks
        nodes = self._quadrant_nodes[self._page_quadrant(addr)]
        return nodes[_mix(line) % len(nodes)]

    def describe(self) -> str:
        return f"knl:{self.mode.value}"


def first_touch_pages(
    instance,
    iteration_sets,
    default_schedules,
    layout: AddressLayout,
    mesh_width: int,
    mesh_height: int,
    sample_iterations_per_set: int = 4,
) -> Dict[int, int]:
    """SNC-4 first-touch table: each page -> quadrant of its first toucher.

    Approximated by the quadrant of the default-schedule core that samples
    the page first, which is what Linux first-touch over an OpenMP static
    schedule produces.
    """
    table: Dict[int, int] = {}
    for nest_index, sets in iteration_sets.items():
        schedule = default_schedules[nest_index]
        dom = instance.nest_domain(nest_index)
        for iteration_set in sets:
            core = schedule[iteration_set.set_id]
            quadrant = quadrant_of_node(core, mesh_width, mesh_height)
            for bindings in iteration_set.sample(dom, sample_iterations_per_set):
                for vaddr, _ in instance.addresses_for(nest_index, bindings):
                    table.setdefault(layout.page_number(vaddr), quadrant)
    return table
