"""KNL-like machine configurations.

``KnlConfig`` is a :class:`~repro.sim.config.SystemConfig` whose address
distribution follows a cluster mode.  The tile grid stays 6x6 (one modeled
core per tile, standing in for KNL's 36 tiles); the LLC is shared
(KNL's distributed L2-slice behaviour under the hash) and DRAM is the
faster DDR4 preset (a stand-in for MCDRAM/DDR bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cache.snuca import LLCOrganization
from repro.memory.distribution import DataDistribution
from repro.memory.dram import DDR4_2400
from repro.sim.config import SystemConfig

from .modes import ClusterMode, KnlDistribution


@dataclass(frozen=True)
class KnlConfig(SystemConfig):
    """A 36-tile KNL-like machine under one cluster mode."""

    cluster_mode: ClusterMode = ClusterMode.ALL_TO_ALL
    page_to_quadrant: Optional[Dict[int, int]] = None

    def build_distribution(self) -> DataDistribution:
        return KnlDistribution(
            num_mcs=self.num_mcs,
            num_llc_banks=self.num_cores,
            layout=self.layout(),
            mc_granularity=self.mc_granularity,
            bank_granularity=self.bank_granularity,
            mode=self.cluster_mode,
            mesh_width=self.mesh_width,
            mesh_height=self.mesh_height,
            page_to_quadrant=self.page_to_quadrant,
        )


def knl_config(
    mode: ClusterMode,
    page_to_quadrant: Optional[Dict[int, int]] = None,
) -> KnlConfig:
    """Standard KNL-like setup for the Figure 16/17 experiments."""
    return KnlConfig(
        llc_organization=LLCOrganization.SHARED,
        dram=DDR4_2400,
        l2_size_bytes=64 * 1024,  # KNL: 1 MB L2/tile, scaled 16x down
        cluster_mode=mode,
        page_to_quadrant=page_to_quadrant,
    )
