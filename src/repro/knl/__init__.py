"""KNL-like machine model: cluster modes as address-distribution policies."""

from .machine import KnlConfig, knl_config
from .modes import (
    ClusterMode,
    KnlDistribution,
    first_touch_pages,
    quadrant_of_node,
)

__all__ = [
    "KnlConfig",
    "knl_config",
    "ClusterMode",
    "KnlDistribution",
    "first_touch_pages",
    "quadrant_of_node",
]
